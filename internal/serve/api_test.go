package serve

import (
	"strings"
	"testing"
)

func TestNormalizeDefaults(t *testing.T) {
	r := &Request{Circuit: "s27"}
	if err := r.normalize(); err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if r.Kind != KindOptimize || r.Mode != "joint" {
		t.Errorf("defaults: kind=%q mode=%q", r.Kind, r.Mode)
	}
	if r.FcHz != 300e6 || r.M != 12 || r.Skew != 0.95 || r.InputProb != 0.5 || r.Activity != 0.5 {
		t.Errorf("defaults: %+v", r)
	}

	sw := &Request{Kind: KindSweep, Circuit: "s27"}
	if err := sw.normalize(); err != nil {
		t.Fatalf("normalize sweep: %v", err)
	}
	if sw.FromHz != 50e6 || sw.ToHz != 600e6 || sw.Points != 8 || sw.Format != "text" {
		t.Errorf("sweep defaults: %+v", sw)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"no source", Request{}, "exactly one"},
		{"two sources", Request{Circuit: "s27", Bench: "INPUT(a)"}, "exactly one"},
		{"bad kind", Request{Kind: "frobnicate", Circuit: "s27"}, "unknown kind"},
		{"bad mode", Request{Circuit: "s27", Mode: "psychic"}, "unknown mode"},
		{"nv without multivt", Request{Circuit: "s27", Mode: "joint", NV: 3}, "multivt option"},
		{"sweep opts on optimize", Request{Circuit: "s27", Points: 4}, "sweep options"},
		{"optimize opts on sweep", Request{Kind: KindSweep, Circuit: "s27", FcHz: 1e8}, "optimize options"},
		{"sweep needs builtin", Request{Kind: KindSweep, Bench: "INPUT(a)"}, "built-in circuit"},
		{"bad range", Request{Kind: KindSweep, Circuit: "s27", FromHz: 2e8, ToHz: 1e8}, "bad sweep range"},
		{"negative timeout", Request{Circuit: "s27", TimeoutMS: -5}, "negative"},
		{"bad skew", Request{Circuit: "s27", Skew: 1.5}, "skew"},
	}
	for _, tc := range cases {
		err := tc.req.normalize()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

// The cache key must collide for requests that mean the same job (defaults
// spelled out vs omitted) and differ whenever any result-bearing field
// differs — while execution controls must never reach the key at all.
func TestCacheKeying(t *testing.T) {
	key := func(r Request) string {
		t.Helper()
		if err := r.normalize(); err != nil {
			t.Fatalf("normalize %+v: %v", r, err)
		}
		return r.cacheKey()
	}
	base := key(Request{Circuit: "s27"})
	spelled := key(Request{Circuit: "s27", Kind: KindOptimize, Mode: "joint",
		FcHz: 300e6, M: 12, Skew: 0.95, InputProb: 0.5, Activity: 0.5})
	if base != spelled {
		t.Errorf("spelled-out defaults changed the key: %s vs %s", base, spelled)
	}
	if k := key(Request{Circuit: "s27", TimeoutMS: 5000, NoCache: true}); k != base {
		t.Errorf("execution controls leaked into the key")
	}
	distinct := []Request{
		{Circuit: "c17"},
		{Circuit: "s27", FcHz: 200e6},
		{Circuit: "s27", Mode: "baseline"},
		{Circuit: "s27", Mode: "multivt"},
		{Circuit: "s27", Skew: 0.9},
		{Circuit: "s27", Tech: "vdd_max=3.0"},
		{Kind: KindSweep, Circuit: "s27"},
	}
	seen := map[string]int{base: -1}
	for i, r := range distinct {
		k := key(r)
		if prev, dup := seen[k]; dup {
			t.Errorf("requests %d and %d share a key", i, prev)
		}
		seen[k] = i
	}

	// Inline netlist text and its upload hash are the same content address.
	bench := "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"
	inline := key(Request{Bench: bench})
	uploaded := key(Request{NetlistSHA256: HashNetlist(bench)})
	if inline != uploaded {
		t.Errorf("inline vs uploaded netlist keys differ")
	}
}

func TestHashNetlist(t *testing.T) {
	h := HashNetlist("abc")
	if len(h) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(h))
	}
	if h != "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" {
		t.Errorf("sha256(abc) mismatch: %s", h)
	}
}
