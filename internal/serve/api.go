// Package serve is the optimization-as-a-service front door: a long-running
// HTTP server that exposes the whole pipeline — netlist + constraints in,
// optimized Vdd/Vt/widths and a cmosopt/manifest/v1 manifest out — over a
// bounded job queue with admission control, per-job cancellation and
// deadlines, server-sent progress events mapped from the obs span tree, and
// a content-addressed result cache that makes identical requests free.
//
// The package is deliberately a thin shell: every number it returns is
// produced by the same internal/core + internal/eval path the command-line
// tools use, with the same byte-identical-at-any-worker-count guarantee, so
// a served response can be diffed against an offline cmd/sweep run (the
// serve-e2e CI job does exactly that).
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"cmosopt/internal/obs"
)

// Request is one optimization job. Exactly one netlist source must be set:
// a built-in benchmark name (Circuit), an inline ISCAS .bench netlist
// (Bench), or the content address of a previously uploaded netlist
// (NetlistSHA256). The zero value of every constraint means "the default" —
// defaults are filled before the cache key is computed, so spelling a
// default out and omitting it address the same cache entry.
type Request struct {
	// Kind selects the request family: "optimize" (default; one circuit,
	// one clock target, one optimizer mode — the cmd/lowpower pipeline) or
	// "sweep" (log-spaced clock sweep with EDP reporting — the cmd/sweep
	// pipeline).
	Kind string `json:"kind,omitempty"`

	Circuit       string `json:"circuit,omitempty"`
	Bench         string `json:"bench,omitempty"`
	NetlistSHA256 string `json:"netlist_sha256,omitempty"`

	// Optimize-family constraints (cmd/lowpower parity).
	Mode      string  `json:"mode,omitempty"`       // joint|baseline|anneal|multivt|dualvdd|sensitivity
	NV        int     `json:"nv,omitempty"`         // thresholds for multivt
	FcHz      float64 `json:"fc_hz,omitempty"`      // required clock (default 300 MHz)
	Skew      float64 `json:"skew,omitempty"`       // derating b (default 0.95)
	InputProb float64 `json:"input_prob,omitempty"` // default 0.5
	Activity  float64 `json:"activity,omitempty"`   // default 0.5
	M         int     `json:"m,omitempty"`          // bisection steps (default 12)

	// Sweep-family constraints (cmd/sweep parity; Circuit source only).
	FromHz float64 `json:"from_hz,omitempty"`
	ToHz   float64 `json:"to_hz,omitempty"`
	Points int     `json:"points,omitempty"`
	Format string  `json:"format,omitempty"` // text|csv

	// Tech holds device-parameter overrides in the -tech file syntax
	// (key=value lines); empty means the default 0.35 µm technology. Part
	// of the cache key: different device params are different results.
	Tech string `json:"tech,omitempty"`

	// Execution controls — never part of the cache key.
	TimeoutMS int  `json:"timeout_ms,omitempty"` // per-job deadline (0 = server default)
	NoCache   bool `json:"nocache,omitempty"`    // bypass the result cache entirely

	// benchText is the resolved netlist text (inline Bench or an uploaded
	// blob), filled at admission; unexported so it never round-trips.
	benchText string
}

// Request kinds and optimizer modes.
const (
	KindOptimize = "optimize"
	KindSweep    = "sweep"
)

var optimizeModes = map[string]bool{
	"joint": true, "baseline": true, "anneal": true,
	"multivt": true, "dualvdd": true, "sensitivity": true,
}

// normalize fills defaults in place and rejects invalid requests. It must
// be canonicalizing: two requests that mean the same job end up field-for-
// field equal, so their cache keys collide by construction.
func (r *Request) normalize() error {
	if r.Kind == "" {
		r.Kind = KindOptimize
	}
	sources := 0
	for _, s := range []string{r.Circuit, r.Bench, r.NetlistSHA256} {
		if s != "" {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("exactly one of circuit, bench, netlist_sha256 required (got %d)", sources)
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms %d negative", r.TimeoutMS)
	}
	switch r.Kind {
	case KindOptimize:
		if r.Mode == "" {
			r.Mode = "joint"
		}
		if !optimizeModes[r.Mode] {
			return fmt.Errorf("unknown mode %q", r.Mode)
		}
		if r.Mode == "multivt" && r.NV == 0 {
			r.NV = 2
		}
		if r.Mode != "multivt" && r.NV != 0 {
			return fmt.Errorf("nv is a multivt option")
		}
		if r.FcHz == 0 {
			r.FcHz = 300e6
		}
		if r.FcHz <= 0 {
			return fmt.Errorf("fc_hz %v must be positive", r.FcHz)
		}
		if r.M == 0 {
			r.M = 12
		}
		if r.M < 1 || r.M > 64 {
			return fmt.Errorf("m = %d outside [1,64]", r.M)
		}
		if r.FromHz != 0 || r.ToHz != 0 || r.Points != 0 || r.Format != "" {
			return fmt.Errorf("from_hz/to_hz/points/format are sweep options")
		}
	case KindSweep:
		if r.Circuit == "" {
			return fmt.Errorf("sweep requests take a built-in circuit name")
		}
		if r.Mode != "" || r.NV != 0 || r.FcHz != 0 || r.M != 0 {
			return fmt.Errorf("mode/nv/fc_hz/m are optimize options")
		}
		if r.FromHz == 0 {
			r.FromHz = 50e6
		}
		if r.ToHz == 0 {
			r.ToHz = 600e6
		}
		if r.Points == 0 {
			r.Points = 8
		}
		if r.FromHz <= 0 || r.ToHz <= r.FromHz || r.Points < 2 || r.Points > 256 {
			return fmt.Errorf("bad sweep range [%v, %v] x %d", r.FromHz, r.ToHz, r.Points)
		}
		switch r.Format {
		case "":
			r.Format = "text"
		case "text", "csv":
		default:
			return fmt.Errorf("unknown format %q", r.Format)
		}
	default:
		return fmt.Errorf("unknown kind %q", r.Kind)
	}
	if r.Skew == 0 {
		r.Skew = 0.95
	}
	if r.Skew <= 0 || r.Skew > 1 {
		return fmt.Errorf("skew %v outside (0,1]", r.Skew)
	}
	if r.InputProb == 0 {
		r.InputProb = 0.5
	}
	if r.Activity == 0 {
		r.Activity = 0.5
	}
	if r.InputProb < 0 || r.InputProb > 1 || r.Activity < 0 || r.Activity > 1 {
		return fmt.Errorf("input_prob/activity outside [0,1]")
	}
	return nil
}

// keySchema versions the cache key layout; bump it whenever the key fields
// or the meaning of a result change, so stale cache hits are impossible
// across deployments.
const keySchema = "cmosopt/key/v1"

// keyForm is the canonical, content-addressed identity of a request:
// (netlist hash, constraints, device params). Execution controls
// (timeout_ms, nocache) are deliberately absent.
type keyForm struct {
	Schema    string  `json:"schema"`
	Kind      string  `json:"kind"`
	Netlist   string  `json:"netlist"` // "name:<builtin>" or "sha256:<hex>"
	Mode      string  `json:"mode,omitempty"`
	NV        int     `json:"nv,omitempty"`
	FcHz      float64 `json:"fc_hz,omitempty"`
	Skew      float64 `json:"skew"`
	InputProb float64 `json:"input_prob"`
	Activity  float64 `json:"activity"`
	M         int     `json:"m,omitempty"`
	FromHz    float64 `json:"from_hz,omitempty"`
	ToHz      float64 `json:"to_hz,omitempty"`
	Points    int     `json:"points,omitempty"`
	Format    string  `json:"format,omitempty"`
	Tech      string  `json:"tech,omitempty"`
}

// HashNetlist returns the content address of a netlist text.
func HashNetlist(bench string) string {
	sum := sha256.Sum256([]byte(bench))
	return hex.EncodeToString(sum[:])
}

// cacheKey derives the content address of a normalized request. The
// netlist component is the benchmark name for built-ins (their generators
// are deterministic, so the name IS the content) and the SHA-256 of the
// netlist text for uploads.
func (r *Request) cacheKey() string {
	netlist := "name:" + r.Circuit
	if r.Circuit == "" {
		h := r.NetlistSHA256
		if h == "" {
			h = HashNetlist(r.Bench)
		}
		netlist = "sha256:" + h
	}
	k := keyForm{
		Schema: keySchema, Kind: r.Kind, Netlist: netlist,
		Mode: r.Mode, NV: r.NV, FcHz: r.FcHz, Skew: r.Skew,
		InputProb: r.InputProb, Activity: r.Activity, M: r.M,
		FromHz: r.FromHz, ToHz: r.ToHz, Points: r.Points, Format: r.Format,
		Tech: r.Tech,
	}
	b, err := json.Marshal(k)
	if err != nil {
		// keyForm is marshal-safe by construction.
		panic(fmt.Sprintf("serve: cache key marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Result is the payload of a completed job: the rendered tool output
// (byte-identical to the offline command for the same request) plus the
// run manifest.
type Result struct {
	Output   string        `json:"output"`
	Manifest *obs.Manifest `json:"manifest,omitempty"`
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus is the wire form of one job's lifecycle position.
type JobStatus struct {
	ID     string  `json:"id"`
	State  string  `json:"state"`
	Key    string  `json:"key,omitempty"`    // content address ("" when nocache)
	Cached bool    `json:"cached,omitempty"` // answered from the result cache
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"` // set in state "done"
}

// Stats is the /v1/stats payload: queue, cache and lifecycle counters.
type Stats struct {
	Accepted   int64 `json:"accepted"`
	Rejected   int64 `json:"rejected"` // 429s from admission control
	Done       int64 `json:"done"`
	Failed     int64 `json:"failed"`
	Canceled   int64 `json:"canceled"`
	CacheHits  int64 `json:"cache_hits"`
	CacheMiss  int64 `json:"cache_misses"`
	QueueDepth int   `json:"queue_depth"`
	QueueCap   int   `json:"queue_cap"`
	Running    int64 `json:"running"`
	Retained   int   `json:"jobs_retained"`
	Netlists   int   `json:"netlists"`
}
