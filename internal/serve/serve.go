package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cmosopt/internal/circuit"
	"cmosopt/internal/obs"
)

// Config parameterizes a Server. Zero values take the listed defaults.
type Config struct {
	// QueueDepth bounds how many admitted jobs may wait for an executor;
	// a full queue rejects submissions with 429 + Retry-After (admission
	// control — under overload the server degrades by refusing early, not
	// by growing an unbounded backlog). Default 16.
	QueueDepth int
	// Executors is the number of jobs optimized concurrently. Default 2.
	Executors int
	// Workers is the per-job engine worker count (the -workers knob of the
	// tools; results are byte-identical at any value). Default 1.
	Workers int
	// CacheEntries bounds the content-addressed result cache. Default 256.
	CacheEntries int
	// NetlistEntries bounds the uploaded-netlist store. Default 64.
	NetlistEntries int
	// RetainJobs bounds how many terminal jobs stay queryable; older ones
	// are forgotten in submission order. Default 1024.
	RetainJobs int
	// DefaultTimeout caps each job's run when the request carries no
	// timeout_ms of its own. 0 means unbounded.
	DefaultTimeout time.Duration
	// ProgressInterval is the SSE span-snapshot poll period. Default 100ms.
	ProgressInterval time.Duration
	// MaxBodyBytes bounds request and netlist-upload bodies. Default 8 MiB.
	MaxBodyBytes int64
	// Runner executes jobs; nil means DefaultRunner (the real pipeline).
	Runner Runner
	// Obs, when non-nil, receives server-lifetime counters (jobs accepted,
	// cache hits, ...) for the shutdown manifest. Purely observational.
	Obs *obs.Registry
}

func (c *Config) fill() {
	if c.QueueDepth == 0 {
		c.QueueDepth = 16
	}
	if c.Executors == 0 {
		c.Executors = 2
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.NetlistEntries == 0 {
		c.NetlistEntries = 64
	}
	if c.RetainJobs == 0 {
		c.RetainJobs = 1024
	}
	if c.ProgressInterval == 0 {
		c.ProgressInterval = 100 * time.Millisecond
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Runner == nil {
		c.Runner = DefaultRunner
	}
}

// Server is the optimization service: admission-controlled job queue,
// executor pool, content-addressed result cache, netlist store, and the
// HTTP API over all of it. Create with New, serve via Handler, stop with
// Shutdown.
type Server struct {
	cfg Config
	mux *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	queue      chan *job

	mu     sync.Mutex
	closed bool
	nextID int64
	jobs   map[string]*job
	order  []string // submission order, for bounded retention

	results  *lru[*Result]
	netlists *lru[string]

	running  atomic.Int64
	accepted atomic.Int64
	rejected atomic.Int64
	ndone    atomic.Int64
	nfailed  atomic.Int64
	ncancel  atomic.Int64
	hits     atomic.Int64
	misses   atomic.Int64
}

// New builds a server and starts its executor pool.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
		results:  newLRU[*Result](cfg.CacheEntries),
		netlists: newLRU[string](cfg.NetlistEntries),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.mux = http.NewServeMux()
	s.routes()
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Handler returns the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown stops admissions, cancels every queued and running job, waits
// for the executors to drain (bounded by ctx), and marks the leftovers
// canceled. Safe to call once; the HTTP listener is the caller's to close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()

	drained := make(chan struct{})
	go func() { s.wg.Wait(); close(drained) }()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
	// Jobs still sitting in the queue never reached an executor.
	for {
		select {
		case j := <-s.queue:
			if j.finish(StateCanceled, nil, context.Canceled) {
				s.ncancel.Add(1)
			}
		default:
			return err
		}
	}
}

// executor drains the queue until shutdown.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.run(j)
		}
	}
}

// run executes one dequeued job through the configured runner.
func (s *Server) run(j *job) {
	if !j.begin() {
		return // canceled while queued
	}
	s.running.Add(1)
	defer s.running.Add(-1)
	defer j.cancel() // release the deadline timer

	res, err := s.cfg.Runner(j.ctx, j.req, s.cfg.Workers, j.reg)
	switch {
	case err == nil:
		if j.finish(StateDone, res, nil) {
			s.ndone.Add(1)
			if j.key != "" {
				s.results.put(j.key, res)
			}
		}
	case j.ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		if j.finish(StateCanceled, nil, err) {
			s.ncancel.Add(1)
		}
	default:
		if j.finish(StateFailed, nil, err) {
			s.nfailed.Add(1)
		}
	}
}

// submit admits one normalized request: cache lookup first, then the
// bounded queue. The error return carries an HTTP status via apiError.
func (s *Server) submit(req *Request) (*job, error) {
	key := ""
	if !req.NoCache {
		key = req.cacheKey()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, &apiError{status: http.StatusServiceUnavailable, msg: "server is shutting down"}
	}

	if key != "" {
		if res, ok := s.results.get(key); ok {
			s.hits.Add(1)
			s.obsCount("serve.cache_hits", 1)
			j := s.newJobLocked(req, key)
			j.cached = true
			j.state = StateDone
			j.res = res
			close(j.done)
			s.registerLocked(j)
			return j, nil
		}
		s.misses.Add(1)
		s.obsCount("serve.cache_misses", 1)
	}

	j := s.newJobLocked(req, key)
	select {
	case s.queue <- j:
	default:
		s.rejected.Add(1)
		s.obsCount("serve.rejected", 1)
		j.cancel()
		return nil, &apiError{
			status:     http.StatusTooManyRequests,
			msg:        fmt.Sprintf("job queue full (%d waiting)", len(s.queue)),
			retryAfter: 1 + len(s.queue)/s.cfg.Executors,
		}
	}
	s.accepted.Add(1)
	s.obsCount("serve.accepted", 1)
	s.registerLocked(j)
	return j, nil
}

// newJobLocked allocates a job with its context chain and registry.
func (s *Server) newJobLocked(req *Request, key string) *job {
	s.nextID++
	ctx, cancel := context.WithCancel(s.baseCtx)
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(s.baseCtx, timeout)
	}
	return &job{
		id:     "j" + strconv.FormatInt(s.nextID, 10),
		req:    req,
		key:    key,
		reg:    obs.NewRegistry(),
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		state:  StateQueued,
	}
}

// registerLocked indexes the job and evicts beyond the retention bound.
// Only terminal jobs may be evicted: a queued or running job must stay
// addressable for cancellation, so eviction scans past live entries.
func (s *Server) registerLocked(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.order) > s.cfg.RetainJobs {
		evicted := false
		for i, id := range s.order {
			old := s.jobs[id]
			old.mu.Lock()
			terminal := old.state == StateDone || old.state == StateFailed || old.state == StateCanceled
			old.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // every retained job is still live; let the table grow
		}
	}
}

// jobByID looks a job up.
func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// cancelJob cancels a job's context and, for still-queued jobs, resolves the
// terminal state immediately (the executor will skip it on dequeue).
func (s *Server) cancelJob(j *job) {
	j.cancel()
	j.mu.Lock()
	queued := j.state == StateQueued
	j.mu.Unlock()
	if queued {
		if j.finish(StateCanceled, nil, context.Canceled) {
			s.ncancel.Add(1)
			s.obsCount("serve.canceled", 1)
		}
	}
}

// stats snapshots the server counters.
func (s *Server) stats() Stats {
	s.mu.Lock()
	retained := len(s.jobs)
	s.mu.Unlock()
	return Stats{
		Accepted:   s.accepted.Load(),
		Rejected:   s.rejected.Load(),
		Done:       s.ndone.Load(),
		Failed:     s.nfailed.Load(),
		Canceled:   s.ncancel.Load(),
		CacheHits:  s.hits.Load(),
		CacheMiss:  s.misses.Load(),
		QueueDepth: len(s.queue),
		QueueCap:   s.cfg.QueueDepth,
		Running:    s.running.Load(),
		Retained:   retained,
		Netlists:   s.netlists.len(),
	}
}

// obsCount mirrors a lifecycle event into the server-lifetime registry (a
// write; the registry is read only by the shutdown manifest path).
func (s *Server) obsCount(name string, n int64) {
	s.cfg.Obs.Counter(name).Add(n)
}

// apiError is an error with an HTTP status (and optional Retry-After).
type apiError struct {
	status     int
	msg        string
	retryAfter int // seconds; 0 = no header
}

func (e *apiError) Error() string { return e.msg }

// --- HTTP surface ---

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("POST /v1/netlists", s.handleNetlistUpload)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client hung up; nothing useful to do
}

func writeError(w http.ResponseWriter, err error) {
	var ae *apiError
	if !errors.As(err, &ae) {
		ae = &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	if ae.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
	}
	writeJSON(w, ae.status, map[string]string{"error": ae.msg})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	if err := req.normalize(); err != nil {
		writeError(w, err)
		return
	}
	if req.NetlistSHA256 != "" {
		text, ok := s.netlists.get(req.NetlistSHA256)
		if !ok {
			writeError(w, &apiError{status: http.StatusNotFound,
				msg: fmt.Sprintf("netlist %s not found (upload it to /v1/netlists first)", req.NetlistSHA256)})
			return
		}
		req.benchText = text
	} else if req.Bench != "" {
		req.benchText = req.Bench
	}

	j, err := s.submit(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			// Client gave up on the wait; the job itself keeps running.
		}
		writeJSON(w, http.StatusOK, j.status())
		return
	}
	status := http.StatusAccepted
	if j.cached {
		status = http.StatusOK
	}
	writeJSON(w, status, j.status())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, &apiError{status: http.StatusNotFound, msg: "no such job"})
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-j.done:
		case <-r.Context().Done():
		}
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeError(w, &apiError{status: http.StatusNotFound, msg: "no such job"})
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleNetlistUpload(w http.ResponseWriter, r *http.Request) {
	body, err := readAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, fmt.Errorf("reading netlist: %w", err))
		return
	}
	text := string(body)
	// Parse now so a bad upload fails loudly here, not inside some later job.
	ct, err := circuit.ParseBenchString("upload", text)
	if err != nil {
		writeError(w, fmt.Errorf("netlist does not parse: %w", err))
		return
	}
	hash := HashNetlist(text)
	s.netlists.put(hash, text)
	writeJSON(w, http.StatusOK, map[string]any{
		"sha256": hash,
		"gates":  ct.NumLogic(),
	})
}
