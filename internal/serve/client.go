package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// readAll is the package's body reader; io.ReadAll behind a name the
// handlers share.
func readAll(r io.Reader) ([]byte, error) { return io.ReadAll(r) }

// Client is a typed view of the server's HTTP API, shared by cmd/loadgen
// and the end-to-end tests so neither hand-rolls requests.
type Client struct {
	BaseURL string
	HTTP    *http.Client // nil means http.DefaultClient
}

// QueueFullError reports an admission-control rejection (HTTP 429) with the
// server's suggested backoff.
type QueueFullError struct {
	RetryAfter int // seconds
	Msg        string
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("queue full (retry after %ds): %s", e.RetryAfter, e.Msg)
}

func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do runs one JSON round trip and decodes the response into out.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("serve client: marshal: %w", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("serve client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return fmt.Errorf("serve client: %w", err)
	}
	defer resp.Body.Close()
	raw, err := readAll(resp.Body)
	if err != nil {
		return fmt.Errorf("serve client: reading response: %w", err)
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		retry, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		return &QueueFullError{RetryAfter: retry, Msg: apiMessage(raw)}
	}
	if resp.StatusCode >= 400 {
		return fmt.Errorf("serve client: %s %s: %s: %s", method, path, resp.Status, apiMessage(raw))
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("serve client: decoding %s: %w", path, err)
		}
	}
	return nil
}

// apiMessage extracts the error field from an API error body, falling back
// to the raw bytes.
func apiMessage(raw []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// Submit enqueues a job and returns its accepted (or cache-hit) status.
func (c *Client) Submit(ctx context.Context, req *Request) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// SubmitWait enqueues a job and blocks until it reaches a terminal state.
func (c *Client) SubmitWait(ctx context.Context, req *Request) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs?wait=1", req, &st)
	return st, err
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait blocks until the job is terminal and returns its final status.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"?wait=1", nil, &st)
	return st, err
}

// Cancel requests cancellation and returns the status as of the request.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Stats fetches the server counters.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	var st Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Healthy reports whether the server answers its health check.
func (c *Client) Healthy(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// UploadNetlist stores a .bench netlist and returns its content address,
// usable as Request.NetlistSHA256.
func (c *Client) UploadNetlist(ctx context.Context, bench string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/netlists",
		strings.NewReader(bench))
	if err != nil {
		return "", fmt.Errorf("serve client: %w", err)
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := c.httpc().Do(req)
	if err != nil {
		return "", fmt.Errorf("serve client: %w", err)
	}
	defer resp.Body.Close()
	raw, err := readAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("serve client: reading response: %w", err)
	}
	if resp.StatusCode >= 400 {
		return "", fmt.Errorf("serve client: upload: %s: %s", resp.Status, apiMessage(raw))
	}
	var out struct {
		SHA256 string `json:"sha256"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return "", fmt.Errorf("serve client: decoding upload response: %w", err)
	}
	return out.SHA256, nil
}

// Event is one server-sent progress frame.
type Event struct {
	Name string // "progress" or "done"
	Data []byte // single-line JSON payload
}

// Events subscribes to a job's SSE stream and invokes fn for every event
// until the stream closes (after "done") or ctx ends. fn returning false
// stops the subscription early.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) bool) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return fmt.Errorf("serve client: %w", err)
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return fmt.Errorf("serve client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := readAll(resp.Body)
		return fmt.Errorf("serve client: events: %s: %s", resp.Status, apiMessage(raw))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var ev Event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if ev.Name != "" {
				if !fn(ev) {
					return nil
				}
				if ev.Name == "done" {
					return nil
				}
			}
			ev = Event{}
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("serve client: event stream: %w", err)
	}
	return nil
}
