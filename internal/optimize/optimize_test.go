package optimize

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeBasics(t *testing.T) {
	r := Range{2, 6}
	if r.Mid() != 4 || r.Width() != 4 {
		t.Errorf("mid/width = %v/%v", r.Mid(), r.Width())
	}
	if lo := r.Lower(); lo.Lo != 2 || lo.Hi != 4 {
		t.Errorf("Lower = %+v", lo)
	}
	if hi := r.Higher(); hi.Lo != 4 || hi.Hi != 6 {
		t.Errorf("Higher = %+v", hi)
	}
	if r.Clamp(0) != 2 || r.Clamp(9) != 6 || r.Clamp(3) != 3 {
		t.Error("Clamp broken")
	}
	if !r.Contains(2) || !r.Contains(6) || r.Contains(6.1) {
		t.Error("Contains broken")
	}
	if err := r.Validate(); err != nil {
		t.Error(err)
	}
	if err := (Range{3, 1}).Validate(); err == nil {
		t.Error("inverted range accepted")
	}
	if err := (Range{math.NaN(), 1}).Validate(); err == nil {
		t.Error("NaN range accepted")
	}
}

func TestLinspace(t *testing.T) {
	pts := Range{0, 1}.Linspace(5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(pts[i]-want[i]) > 1e-12 {
			t.Fatalf("linspace = %v", pts)
		}
	}
	if pts := (Range{0, 1}).Linspace(1); len(pts) != 1 || pts[0] != 0.5 {
		t.Errorf("degenerate linspace = %v", pts)
	}
}

func TestMinSatisfying(t *testing.T) {
	// pred: x >= 3.7 on [0,10].
	x, ok := MinSatisfying(Range{0, 10}, 40, func(v float64) bool { return v >= 3.7 })
	if !ok || math.Abs(x-3.7) > 1e-9 {
		t.Errorf("MinSatisfying = %v ok=%v, want ~3.7", x, ok)
	}
	// Never satisfiable.
	if _, ok := MinSatisfying(Range{0, 10}, 40, func(v float64) bool { return false }); ok {
		t.Error("unsatisfiable predicate reported ok")
	}
	// Already satisfied at Lo.
	x, ok = MinSatisfying(Range{5, 10}, 40, func(v float64) bool { return v >= 1 })
	if !ok || x != 5 {
		t.Errorf("lo-satisfied = %v ok=%v", x, ok)
	}
}

func TestMinSatisfyingAlwaysReturnsSatisfying(t *testing.T) {
	f := func(threshRaw float64, steps uint8) bool {
		thresh := math.Mod(math.Abs(threshRaw), 10)
		pred := func(v float64) bool { return v >= thresh }
		x, ok := MinSatisfying(Range{0, 10}, int(steps%30)+1, pred)
		return ok && pred(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMaxSatisfying(t *testing.T) {
	x, ok := MaxSatisfying(Range{0, 10}, 40, func(v float64) bool { return v <= 6.2 })
	if !ok || math.Abs(x-6.2) > 1e-9 {
		t.Errorf("MaxSatisfying = %v ok=%v", x, ok)
	}
	if _, ok := MaxSatisfying(Range{0, 10}, 40, func(v float64) bool { return false }); ok {
		t.Error("unsatisfiable predicate reported ok")
	}
	x, ok = MaxSatisfying(Range{0, 10}, 40, func(v float64) bool { return true })
	if !ok || x != 10 {
		t.Errorf("hi-satisfied = %v ok=%v", x, ok)
	}
}

func TestGoldenSectionQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x - 2.5) * (x - 2.5) }
	x, fx := GoldenSection(f, Range{0, 10}, 1e-9, 200)
	if math.Abs(x-2.5) > 1e-6 || fx > 1e-10 {
		t.Errorf("golden = (%v, %v)", x, fx)
	}
}

func TestGoldenSectionEdgeMinimum(t *testing.T) {
	// Monotone increasing: minimum at the left edge.
	x, _ := GoldenSection(func(x float64) float64 { return x }, Range{1, 4}, 1e-9, 200)
	if math.Abs(x-1) > 1e-6 {
		t.Errorf("edge minimum = %v, want 1", x)
	}
}

func TestBrentQuadraticAndAbs(t *testing.T) {
	x, fx := Brent(func(x float64) float64 { return (x + 1.25) * (x + 1.25) }, Range{-10, 10}, 1e-10, 200)
	if math.Abs(x+1.25) > 1e-6 || fx > 1e-10 {
		t.Errorf("brent quadratic = (%v, %v)", x, fx)
	}
	// Non-smooth unimodal function.
	x, _ = Brent(math.Abs, Range{-3, 5}, 1e-10, 200)
	if math.Abs(x) > 1e-6 {
		t.Errorf("brent |x| = %v", x)
	}
}

func TestBrentMatchesGolden(t *testing.T) {
	f := func(x float64) float64 { return math.Exp(x) + math.Exp(-2*x) } // min at ln(2)/3
	want := math.Log(2) / 3
	xg, _ := GoldenSection(f, Range{-2, 2}, 1e-10, 300)
	xb, _ := Brent(f, Range{-2, 2}, 1e-10, 300)
	if math.Abs(xg-want) > 1e-6 || math.Abs(xb-want) > 1e-6 {
		t.Errorf("golden %v brent %v want %v", xg, xb, want)
	}
}

func TestGridMin(t *testing.T) {
	x, fx := GridMin(func(x float64) float64 { return (x - 3) * (x - 3) }, Range{0, 10}, 101)
	if math.Abs(x-3) > 0.06 || fx > 0.01 {
		t.Errorf("grid = (%v, %v)", x, fx)
	}
}

func TestCoordinateDescentConvexQuadratic(t *testing.T) {
	// f = (x−1)² + 2(y+2)² + xy/10 — strictly convex.
	f := func(v []float64) float64 {
		x, y := v[0], v[1]
		return (x-1)*(x-1) + 2*(y+2)*(y+2) + x*y/10
	}
	bounds := []Range{{-5, 5}, {-5, 5}}
	x, fx := CoordinateDescent(f, []float64{4, 4}, bounds, 50, 1e-12)
	if fx > f([]float64{1.05, -2.03})+1e-3 {
		t.Errorf("descent stalled at %v (f=%v)", x, fx)
	}
	// Gradient-ish check: tiny perturbations should not improve much.
	for i := range x {
		for _, d := range []float64{-1e-3, 1e-3} {
			y := append([]float64(nil), x...)
			y[i] += d
			if f(y) < fx-1e-6 {
				t.Errorf("coordinate %d not at minimum", i)
			}
		}
	}
}

func TestCoordinateDescentDoesNotMutateX0(t *testing.T) {
	x0 := []float64{3, 3}
	CoordinateDescent(func(v []float64) float64 { return v[0]*v[0] + v[1]*v[1] },
		x0, []Range{{-4, 4}, {-4, 4}}, 5, 0)
	if x0[0] != 3 || x0[1] != 3 {
		t.Error("x0 mutated")
	}
}

func TestAnnealQuadratic(t *testing.T) {
	cfg := AnnealConfig{Passes: 2, StepsPerPass: 4000, T0: 10, TFinal: 1e-5, Seed: 3}
	energy := func(x float64) float64 { return (x - 4) * (x - 4) }
	neighbor := func(x float64, rng *rand.Rand) float64 { return x + rng.NormFloat64() }
	best, bestE, err := Anneal(cfg, -20.0, energy, neighbor)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(best-4) > 0.5 || bestE > 0.3 {
		t.Errorf("anneal best = %v (E=%v)", best, bestE)
	}
}

func TestAnnealDeterministicPerSeed(t *testing.T) {
	cfg := DefaultAnnealConfig()
	energy := func(x float64) float64 { return math.Abs(x - 1) }
	neighbor := func(x float64, rng *rand.Rand) float64 { return x + rng.NormFloat64()*0.5 }
	a1, e1, _ := Anneal(cfg, 0.0, energy, neighbor)
	a2, e2, _ := Anneal(cfg, 0.0, energy, neighbor)
	if a1 != a2 || e1 != e2 {
		t.Error("same seed, different result")
	}
}

func TestAnnealRejectsInfCandidates(t *testing.T) {
	cfg := AnnealConfig{Passes: 1, StepsPerPass: 500, T0: 5, TFinal: 1e-3, Seed: 7}
	// Energy is +Inf outside [0, 2]; inside it's (x−1)².
	energy := func(x float64) float64 {
		if x < 0 || x > 2 {
			return math.Inf(1)
		}
		return (x - 1) * (x - 1)
	}
	neighbor := func(x float64, rng *rand.Rand) float64 { return x + rng.NormFloat64() }
	best, bestE, err := Anneal(cfg, 1.5, energy, neighbor)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(bestE, 1) || best < 0 || best > 2 {
		t.Errorf("anneal accepted infeasible state: %v (E=%v)", best, bestE)
	}
}

func TestAnnealConfigValidation(t *testing.T) {
	energy := func(x float64) float64 { return x * x }
	neighbor := func(x float64, rng *rand.Rand) float64 { return x }
	bad := []AnnealConfig{
		{Passes: 0, StepsPerPass: 10, T0: 1, TFinal: 0.1},
		{Passes: 1, StepsPerPass: 0, T0: 1, TFinal: 0.1},
		{Passes: 1, StepsPerPass: 10, T0: 0, TFinal: 0.1},
		{Passes: 1, StepsPerPass: 10, T0: 1, TFinal: 2},
		{Passes: 1, StepsPerPass: 10, T0: 1, TFinal: 0},
	}
	for i, cfg := range bad {
		if _, _, err := Anneal(cfg, 1.0, energy, neighbor); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
