package optimize

import (
	"math"
	"testing"
)

func TestNelderMeadQuadraticBowl(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-1.5)*(x[0]-1.5) + 3*(x[1]+0.5)*(x[1]+0.5)
	}
	bounds := []Range{{-5, 5}, {-5, 5}}
	x, fx := NelderMead(f, []float64{4, 4}, bounds, 0, 1e-12, 500)
	if math.Abs(x[0]-1.5) > 1e-4 || math.Abs(x[1]+0.5) > 1e-4 || fx > 1e-7 {
		t.Errorf("NM bowl = %v (f=%v)", x, fx)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	bounds := []Range{{-2, 2}, {-1, 3}}
	x, fx := NelderMead(f, []float64{-1.2, 1}, bounds, 0.2, 1e-14, 3000)
	if math.Abs(x[0]-1) > 1e-2 || math.Abs(x[1]-1) > 1e-2 {
		t.Errorf("NM rosenbrock = %v (f=%v)", x, fx)
	}
}

func TestNelderMeadRespectsBounds(t *testing.T) {
	// Minimum of (x+3)² over [0,5] is at the boundary x=0.
	f := func(x []float64) float64 { return (x[0] + 3) * (x[0] + 3) }
	x, _ := NelderMead(f, []float64{4}, []Range{{0, 5}}, 0, 1e-12, 300)
	if x[0] < 0 || x[0] > 5 {
		t.Fatalf("NM left the box: %v", x)
	}
	if x[0] > 1e-3 {
		t.Errorf("NM boundary minimum = %v, want ~0", x[0])
	}
}

func TestNelderMeadInfPlateaus(t *testing.T) {
	// Feasible valley surrounded by +Inf: the simplex must not get stuck
	// when seeded inside the feasible region.
	f := func(x []float64) float64 {
		if x[0] < 0.5 || x[0] > 2.5 {
			return math.Inf(1)
		}
		return (x[0] - 1.7) * (x[0] - 1.7)
	}
	x, fx := NelderMead(f, []float64{1.0}, []Range{{0, 4}}, 0.2, 1e-12, 300)
	if math.Abs(x[0]-1.7) > 1e-3 || math.IsInf(fx, 1) {
		t.Errorf("NM plateau = %v (f=%v)", x, fx)
	}
}

func TestNelderMeadDegenerate(t *testing.T) {
	if x, fx := NelderMead(func(x []float64) float64 { return 0 }, nil, nil, 0, 1e-9, 10); x != nil || !math.IsInf(fx, 1) {
		t.Errorf("empty input: %v %v", x, fx)
	}
}
