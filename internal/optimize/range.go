// Package optimize is the small numerical-optimization library backing the
// device-circuit optimizer: interval bisection in the style of the paper's
// Procedure 2 (MID/LOWER/HIGHER range refinement), scalar minimization
// (golden section and Brent), bounded coordinate descent, and a generic
// multi-pass simulated-annealing engine used by the paper's §5 comparison.
// Only the standard library is used.
package optimize

import "fmt"

// Range is a closed interval [Lo, Hi] supporting the MID / LOWER / HIGHER
// refinement of the paper's Procedure 2.
type Range struct{ Lo, Hi float64 }

// Validate reports an error when the interval is inverted.
func (r Range) Validate() error {
	if !(r.Lo <= r.Hi) { // also catches NaN
		return fmt.Errorf("optimize: invalid range [%v,%v]", r.Lo, r.Hi)
	}
	return nil
}

// Mid returns the interval's center, the paper's MID(XRange).
func (r Range) Mid() float64 { return r.Lo + (r.Hi-r.Lo)/2 }

// Lower returns the lower half [Lo, Mid], the paper's LOWER(XRange).
func (r Range) Lower() Range { return Range{r.Lo, r.Mid()} }

// Higher returns the upper half [Mid, Hi], the paper's HIGHER(XRange).
func (r Range) Higher() Range { return Range{r.Mid(), r.Hi} }

// Width returns Hi − Lo.
func (r Range) Width() float64 { return r.Hi - r.Lo }

// Clamp projects x into the interval.
func (r Range) Clamp(x float64) float64 {
	if x < r.Lo {
		return r.Lo
	}
	if x > r.Hi {
		return r.Hi
	}
	return x
}

// Contains reports whether x lies in the closed interval.
func (r Range) Contains(x float64) bool { return x >= r.Lo && x <= r.Hi }

// Linspace returns n evenly spaced points from Lo to Hi inclusive (n ≥ 2).
func (r Range) Linspace(n int) []float64 {
	if n < 2 {
		return []float64{r.Mid()}
	}
	out := make([]float64, n)
	step := r.Width() / float64(n-1)
	for i := range out {
		out[i] = r.Lo + float64(i)*step
	}
	out[n-1] = r.Hi
	return out
}
