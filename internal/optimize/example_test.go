package optimize_test

import (
	"fmt"

	"cmosopt/internal/optimize"
)

func ExampleMinSatisfying() {
	// Smallest width meeting a delay target, the inner move of Procedure 2:
	// delay(w) = 10/w + 1 must be ≤ 3, so w ≥ 5.
	w, ok := optimize.MinSatisfying(optimize.Range{Lo: 1, Hi: 100}, 40, func(w float64) bool {
		return 10/w+1 <= 3
	})
	fmt.Printf("ok=%v w=%.3f\n", ok, w)
	// Output: ok=true w=5.000
}

func ExampleGoldenSection() {
	x, fx := optimize.GoldenSection(func(x float64) float64 {
		return (x - 2) * (x - 2)
	}, optimize.Range{Lo: 0, Hi: 10}, 1e-9, 200)
	fmt.Printf("x=%.3f f<1e-15: %v\n", x, fx < 1e-15)
	// Output: x=2.000 f<1e-15: true
}

func ExampleRange() {
	r := optimize.Range{Lo: 0.1, Hi: 3.3}
	fmt.Printf("mid=%.2f lower=[%.2f,%.2f] higher=[%.2f,%.2f]\n",
		r.Mid(), r.Lower().Lo, r.Lower().Hi, r.Higher().Lo, r.Higher().Hi)
	// Output: mid=1.70 lower=[0.10,1.70] higher=[1.70,3.30]
}
