package optimize

import (
	"math"
	"sort"
)

// NelderMead minimizes f over a box with the downhill-simplex method
// (reflection/expansion/contraction/shrink), projecting every trial point
// into the bounds. It is the derivative-free multidimensional complement to
// the scalar searches: robust to the mild non-smoothness of width-solver
// objectives. x0 seeds the simplex; step sets the initial simplex size per
// coordinate (a fraction of each bound's width when 0). Returns the best
// point and value after maxIter iterations or when the simplex's value
// spread falls below tol.
func NelderMead(f func([]float64) float64, x0 []float64, bounds []Range, step, tol float64, maxIter int) ([]float64, float64) {
	n := len(x0)
	if n == 0 {
		return nil, math.Inf(1)
	}
	clampVec := func(x []float64) {
		for i := range x {
			x[i] = bounds[i].Clamp(x[i])
		}
	}

	// Initial simplex: x0 plus one perturbed vertex per coordinate.
	verts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	verts[0] = append([]float64(nil), x0...)
	clampVec(verts[0])
	for i := 0; i < n; i++ {
		v := append([]float64(nil), verts[0]...)
		h := step
		if h <= 0 {
			h = 0.1 * bounds[i].Width()
		}
		v[i] += h
		if v[i] > bounds[i].Hi { // step the other way at the boundary
			v[i] = verts[0][i] - h
		}
		clampVec(v)
		verts[i+1] = v
	}
	for i := range verts {
		vals[i] = f(verts[i])
	}

	idx := make([]int, n+1)
	for i := range idx {
		idx[i] = i
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	// The diameter floor keeps a value-spread tie from terminating a simplex
	// that straddles the minimum symmetrically (the values agree while the
	// vertices are still far apart).
	diamTol := 0.0
	for i := range bounds {
		if w := 1e-7 * bounds[i].Width(); w > diamTol {
			diamTol = w
		}
	}
	diameter := func() float64 {
		d := 0.0
		for _, v := range verts[1:] {
			for j := 0; j < n; j++ {
				if dj := math.Abs(v[j] - verts[0][j]); dj > d {
					d = dj
				}
			}
		}
		return d
	}
	for iter := 0; iter < maxIter; iter++ {
		sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
		best, worst := idx[0], idx[n]
		if spread := vals[worst] - vals[best]; spread >= 0 && spread <= tol &&
			!math.IsInf(vals[worst], 1) && diameter() <= diamTol {
			break
		}
		// Centroid of all but the worst vertex.
		centroid := make([]float64, n)
		for _, id := range idx[:n] {
			for j := 0; j < n; j++ {
				centroid[j] += verts[id][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		at := func(coef float64) ([]float64, float64) {
			x := make([]float64, n)
			for j := 0; j < n; j++ {
				x[j] = centroid[j] + coef*(centroid[j]-verts[worst][j])
			}
			clampVec(x)
			return x, f(x)
		}
		xr, fr := at(alpha)
		switch {
		case fr < vals[best]:
			if xe, fe := at(gamma); fe < fr {
				verts[worst], vals[worst] = xe, fe
			} else {
				verts[worst], vals[worst] = xr, fr
			}
		case fr < vals[idx[n-1]]:
			verts[worst], vals[worst] = xr, fr
		default:
			if xc, fc := at(-rho); fc < vals[worst] {
				verts[worst], vals[worst] = xc, fc
			} else {
				// Shrink everything toward the best vertex.
				for _, id := range idx[1:] {
					for j := 0; j < n; j++ {
						verts[id][j] = verts[best][j] + sigma*(verts[id][j]-verts[best][j])
					}
					clampVec(verts[id])
					vals[id] = f(verts[id])
				}
			}
		}
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	return verts[idx[0]], vals[idx[0]]
}
