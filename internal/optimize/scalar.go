package optimize

import (
	"math"

	"cmosopt/internal/floats"
)

const invPhi = 0.6180339887498949 // (√5 − 1)/2

// GoldenSection minimizes a unimodal f on r to within tol (interval width) or
// maxIter iterations, whichever comes first. It returns the best abscissa and
// value found. For non-unimodal f it still converges to a local minimum.
func GoldenSection(f func(float64) float64, r Range, tol float64, maxIter int) (x, fx float64) {
	a, b := r.Lo, r.Hi
	c := b - (b-a)*invPhi
	d := a + (b-a)*invPhi
	fc, fd := f(c), f(d)
	for i := 0; i < maxIter && (b-a) > tol; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - (b-a)*invPhi
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + (b-a)*invPhi
			fd = f(d)
		}
	}
	if fc < fd {
		return c, fc
	}
	return d, fd
}

// Brent minimizes a unimodal f on r combining parabolic interpolation with
// golden-section fallback (Brent's method). tol is the absolute abscissa
// tolerance.
func Brent(f func(float64) float64, r Range, tol float64, maxIter int) (float64, float64) {
	const cgold = 0.3819660112501051 // 1 − invPhi
	a, b := r.Lo, r.Hi
	x := a + cgold*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	var d, e float64
	for i := 0; i < maxIter; i++ {
		xm := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + 1e-18
		tol2 := 2 * tol1
		if math.Abs(x-xm) <= tol2-0.5*(b-a) {
			break
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Trial parabolic fit through x, v, w.
			rr := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*rr
			q = 2 * (q - rr)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etmp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etmp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x >= xm {
				e = a - x
			} else {
				e = b - x
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			// Near-identical bookkeeping points count as equal: a parabolic
			// fit through two coincident abscissae is degenerate either way,
			// and bit-exact equality would miss the rounding-noise case.
			if fu <= fw || floats.Eq(w, x) {
				v, fv = w, fw
				w, fw = u, fu
			} else if fu <= fv || floats.Eq(v, x) || floats.Eq(v, w) {
				v, fv = u, fu
			}
		}
	}
	return x, fx
}

// GridMin evaluates f on n evenly spaced points of r and returns the best.
// Useful as a robust pre-scan before a local method.
func GridMin(f func(float64) float64, r Range, n int) (float64, float64) {
	bestX, bestF := r.Lo, math.Inf(1)
	for _, x := range r.Linspace(n) {
		if fx := f(x); fx < bestF {
			bestX, bestF = x, fx
		}
	}
	return bestX, bestF
}
