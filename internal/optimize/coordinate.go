package optimize

// CoordinateDescent minimizes f over a box by cyclically minimizing each
// coordinate with golden-section search. It runs the given number of full
// sweeps (or stops early when a sweep improves by less than tol) and returns
// the best point and value. x0 is not mutated.
func CoordinateDescent(f func([]float64) float64, x0 []float64, bounds []Range, sweeps int, tol float64) ([]float64, float64) {
	x := append([]float64(nil), x0...)
	for i := range x {
		x[i] = bounds[i].Clamp(x[i])
	}
	fx := f(x)
	for s := 0; s < sweeps; s++ {
		prev := fx
		for i := range x {
			xi := x[i]
			g := func(v float64) float64 {
				x[i] = v
				return f(x)
			}
			bestV, bestF := GoldenSection(g, bounds[i], bounds[i].Width()*1e-4, 60)
			if bestF < fx {
				x[i], fx = bestV, bestF
			} else {
				x[i] = xi
			}
		}
		if prev-fx < tol {
			break
		}
	}
	return x, fx
}
