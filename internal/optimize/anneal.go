package optimize

import (
	"fmt"
	"math"
	"math/rand"
)

// AnnealConfig parameterizes the multi-pass simulated-annealing engine. Each
// pass restarts the temperature schedule from the best state found so far
// (the "multiple-pass simulated annealing" of the paper's §4.3 comparison).
type AnnealConfig struct {
	Passes       int     // annealing passes (restarts from the incumbent)
	StepsPerPass int     // Metropolis steps per pass
	T0           float64 // initial temperature (energy units)
	TFinal       float64 // final temperature (> 0)
	Seed         int64
	// Stop, when non-nil, is polled between Metropolis steps; once it
	// returns true the walk abandons the remaining schedule and returns the
	// incumbent. Used to propagate job cancellation into the annealing loop;
	// a walk that never observes Stop()==true is unaffected by it.
	Stop func() bool
}

// DefaultAnnealConfig returns a schedule sized for the benchmark circuits.
func DefaultAnnealConfig() AnnealConfig {
	return AnnealConfig{Passes: 3, StepsPerPass: 2000, T0: 1.0, TFinal: 1e-4, Seed: 1}
}

func (c AnnealConfig) validate() error {
	switch {
	case c.Passes < 1:
		return fmt.Errorf("optimize: anneal passes %d < 1", c.Passes)
	case c.StepsPerPass < 1:
		return fmt.Errorf("optimize: anneal steps %d < 1", c.StepsPerPass)
	case !(c.T0 > 0) || !(c.TFinal > 0) || c.TFinal > c.T0:
		return fmt.Errorf("optimize: anneal temperatures T0=%v TFinal=%v invalid", c.T0, c.TFinal)
	}
	return nil
}

// Anneal minimizes energy over states of type S. neighbor must return a new
// state (it must not mutate its argument); energy must be deterministic.
// Infinite energies mark infeasible states and are never accepted as the
// incumbent unless nothing better is ever seen.
func Anneal[S any](cfg AnnealConfig, init S, energy func(S) float64, neighbor func(S, *rand.Rand) S) (S, float64, error) {
	if err := cfg.validate(); err != nil {
		return init, math.Inf(1), err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	best := init
	bestE := energy(init)
	decay := math.Pow(cfg.TFinal/cfg.T0, 1/float64(cfg.StepsPerPass-1+1))

	for pass := 0; pass < cfg.Passes; pass++ {
		cur, curE := best, bestE
		temp := cfg.T0
		for step := 0; step < cfg.StepsPerPass; step++ {
			if cfg.Stop != nil && cfg.Stop() {
				return best, bestE, nil
			}
			cand := neighbor(cur, rng)
			candE := energy(cand)
			if accept(curE, candE, temp, rng) {
				cur, curE = cand, candE
				if curE < bestE {
					best, bestE = cur, curE
				}
			}
			temp *= decay
		}
	}
	return best, bestE, nil
}

func accept(curE, candE, temp float64, rng *rand.Rand) bool {
	if candE <= curE {
		return true
	}
	if math.IsInf(candE, 1) {
		return false
	}
	return rng.Float64() < math.Exp(-(candE-curE)/temp)
}
