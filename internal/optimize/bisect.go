package optimize

// MinSatisfying finds the approximately smallest x in r for which pred(x) is
// true, assuming pred is monotone non-decreasing in x (false below some
// boundary, true above). It performs the given number of bisection steps.
// The second result is false when even r.Hi fails the predicate; the first
// result is then r.Hi. When r.Lo already satisfies the predicate it returns
// r.Lo. The returned x always satisfies pred (when ok).
func MinSatisfying(r Range, steps int, pred func(float64) bool) (float64, bool) {
	if !pred(r.Hi) {
		return r.Hi, false
	}
	if pred(r.Lo) {
		return r.Lo, true
	}
	lo, hi := r.Lo, r.Hi // invariant: pred(lo) = false, pred(hi) = true
	for i := 0; i < steps; i++ {
		mid := lo + (hi-lo)/2
		if pred(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, true
}

// MaxSatisfying finds the approximately largest x in r for which pred(x) is
// true, assuming pred is monotone non-increasing in x (true below some
// boundary, false above). The second result is false when even r.Lo fails.
func MaxSatisfying(r Range, steps int, pred func(float64) bool) (float64, bool) {
	if !pred(r.Lo) {
		return r.Lo, false
	}
	if pred(r.Hi) {
		return r.Hi, true
	}
	lo, hi := r.Lo, r.Hi // invariant: pred(lo) = true, pred(hi) = false
	for i := 0; i < steps; i++ {
		mid := lo + (hi-lo)/2
		if pred(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}
