package eval

import (
	"math"
	"sync"

	"cmosopt/internal/delay"
)

// Engine cloning and the concurrency-safe device-coefficient cache.
//
// A single Engine stays single-goroutine (scratch buffers, tracked state),
// but everything expensive it holds is immutable after construction: the
// circuit, the technology, the activity profile, the wiring model, the pure
// delay/power evaluators and the topological order. Clone shares all of that
// and allocates only fresh scratch, so a worker engine costs two float slices
// — cheap enough to build one per worker in every parallel driver.
//
// Clones also share the coefficient cache. The coefficient triple of a
// (V_dd, V_TS) pair is a pure function of the pair, so a concurrent cache
// cannot change any value, only who pays the transcendental evaluations: N
// workers sweeping the same voltage grid fill it once instead of N times.
// The cache is sharded by key hash to keep lock contention off the hot path;
// each engine additionally keeps its private single-entry fast path (in
// eval.go), which serves the overwhelming share of lookups without touching
// a mutex.

// coeffShards is the number of independently locked cache shards. Voltage
// pairs hash well (they come from bisection midpoints and RNG draws), so a
// small power of two suffices to make contention unmeasurable.
const coeffShards = 16

type coeffShard struct {
	mu sync.Mutex
	m  map[coeffKey]delay.Coeffs
	// Lifetime hit/miss tallies for this shard (under mu; monotonic even
	// across clears). Observability only — never consulted by evaluation.
	hits   int64
	misses int64
}

// CoeffCache is a concurrency-safe map from (V_dd, V_TS) to the device
// coefficients of that operating point, shared by an engine and its clones.
// Each shard is cleared (not grown without bound) when it exceeds its slice
// of maxCoeffEntries — Monte-Carlo studies draw unbounded fresh pairs.
type CoeffCache struct {
	shards [coeffShards]coeffShard
}

// NewCoeffCache returns an empty shared coefficient cache.
func NewCoeffCache() *CoeffCache {
	cc := &CoeffCache{}
	for i := range cc.shards {
		cc.shards[i].m = make(map[coeffKey]delay.Coeffs)
	}
	return cc
}

//cmosvet:hotpath
func (cc *CoeffCache) shardFor(k coeffKey) *coeffShard {
	// Mix both float bit patterns; fibonacci hashing spreads the structured
	// low-entropy bisection values across shards.
	h := math.Float64bits(k.vdd)*0x9E3779B97F4A7C15 ^ math.Float64bits(k.vts)
	h *= 0x9E3779B97F4A7C15
	return &cc.shards[h>>59&(coeffShards-1)]
}

// lookup returns the cached coefficients of k, if present.
//cmosvet:hotpath
func (cc *CoeffCache) lookup(k coeffKey) (delay.Coeffs, bool) {
	s := cc.shardFor(k)
	s.mu.Lock()
	c, ok := s.m[k]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	return c, ok
}

// store inserts the coefficients of k, clearing the shard first when full.
//cmosvet:hotpath
func (cc *CoeffCache) store(k coeffKey, c delay.Coeffs) {
	s := cc.shardFor(k)
	s.mu.Lock()
	if len(s.m) >= maxCoeffEntries/coeffShards {
		clear(s.m)
	}
	s.m[k] = c
	s.mu.Unlock()
}

// CacheShardStats is one shard's lifetime statistics: shared-map hits and
// misses (the engines' private single-entry fast paths never reach the
// shards, so these measure the cross-clone sharing benefit) plus current
// entry count.
type CacheShardStats struct {
	Hits    int64
	Misses  int64
	Entries int
}

// ShardStats returns a per-shard statistics snapshot (each shard locked
// individually; the whole-cache view is racy, which diagnostics tolerate).
func (cc *CoeffCache) ShardStats() [coeffShards]CacheShardStats {
	var out [coeffShards]CacheShardStats
	for i := range cc.shards {
		s := &cc.shards[i]
		s.mu.Lock()
		out[i] = CacheShardStats{Hits: s.hits, Misses: s.misses, Entries: len(s.m)}
		s.mu.Unlock()
	}
	return out
}

// Len reports the number of cached operating points (racy snapshot; for
// tests and diagnostics).
func (cc *CoeffCache) Len() int {
	n := 0
	for i := range cc.shards {
		cc.shards[i].mu.Lock()
		n += len(cc.shards[i].m)
		cc.shards[i].mu.Unlock()
	}
	return n
}

// Clone returns a new engine over the same circuit, technology, activity,
// wiring and clock, sharing every immutable structure and the coefficient
// cache with the receiver, with fresh scratch buffers and counters. The
// clone is as single-goroutine as any engine — Clone exists so each worker
// of a parallel driver can own one — but clone and parent may run
// concurrently with each other. Incremental-evaluation bindings are not
// carried over: the clone starts unbound.
func (e *Engine) Clone() *Engine {
	n := e.C.N()
	return &Engine{
		C:        e.C,
		Tech:     e.Tech,
		Act:      e.Act,
		Wire:     e.Wire,
		Fc:       e.Fc,
		dm:       e.dm,
		pm:       e.pm,
		cs:       e.cs,
		numLogic: e.numLogic,
		cache:    e.cache,
		sink:     e.sink,
		td:       make([]float64, n),
		arr:      make([]float64, n),
	}
}

// CoeffCacheShared exposes the engine's shared coefficient cache (for tests).
func (e *Engine) CoeffCacheShared() *CoeffCache { return e.cache }
