package eval

// Metrics counts the evaluation work an engine has performed. Every delay
// number produced by the engine funnels through one gate-delay model call, so
// GateDelayCalls is a faithful effort meter across full sweeps, width probes
// and incremental propagation alike; FullEvalEquivalents converts it into the
// O(M³) full-circuit-evaluation units the paper counts in.
type Metrics struct {
	GateDelayCalls   int64 // single-gate delay-model evaluations (all sources)
	GateEnergyCalls  int64 // single-gate energy-model evaluations
	FullDelaySweeps  int64 // whole-circuit delay computations (Delays/Arrivals/…)
	FullEnergySweeps int64 // whole-circuit energy computations (Energy)
	WidthProbes      int64 // width-override probes (ProbeWidth, GateDelayOverride)
	IncrementalEdits int64 // bound-assignment edits (SetWidth, SetGateVts, …)
	DirtyGates       int64 // gates re-evaluated by incremental propagation
	CoeffHits        int64 // device-coefficient cache hits
	CoeffMisses      int64 // device-coefficient cache misses (transcendental work)
}

// Reset zeroes all counters.
func (m *Metrics) Reset() { *m = Metrics{} }

// Add accumulates another metrics snapshot.
func (m *Metrics) Add(o Metrics) {
	m.GateDelayCalls += o.GateDelayCalls
	m.GateEnergyCalls += o.GateEnergyCalls
	m.FullDelaySweeps += o.FullDelaySweeps
	m.FullEnergySweeps += o.FullEnergySweeps
	m.WidthProbes += o.WidthProbes
	m.IncrementalEdits += o.IncrementalEdits
	m.DirtyGates += o.DirtyGates
	m.CoeffHits += o.CoeffHits
	m.CoeffMisses += o.CoeffMisses
}
