package eval

import (
	"math"
	"testing"

	"cmosopt/internal/activity"
	"cmosopt/internal/circuit"
	"cmosopt/internal/delay"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/power"
	"cmosopt/internal/wiring"
)

// Base and step of the cache-overflow threshold sweep, named so the swept
// operating points stay in volts.
const (
	vtsBase = 0.2  //cmosvet:unit V
	vtsStep = 1e-7 //cmosvet:unit V
)

// buildCase returns a synthetic circuit with its engine plus the raw model
// evaluators the engine must agree with.
func buildCase(t testing.TB, seed int64) (*circuit.Circuit, *Engine, *delay.Evaluator, *power.Evaluator) {
	t.Helper()
	c, err := netgen.Generate(netgen.Config{
		Name: "evaltest", Gates: 60, Depth: 6, PIs: 8, POs: 6, DFFs: 4,
	}, seed)
	if err != nil {
		t.Fatalf("netgen: %v", err)
	}
	tech := device.Default350()
	act, err := activity.PropagateUniform(c, 0.5, 0.25)
	if err != nil {
		t.Fatalf("activity: %v", err)
	}
	wire, err := wiring.New(wiring.Default350(), max(c.NumLogic(), 1))
	if err != nil {
		t.Fatalf("wiring: %v", err)
	}
	wire.SampleNets(c.N(), seed)
	eng, err := New(c, &tech, act, wire, 100e6)
	if err != nil {
		t.Fatalf("eval.New: %v", err)
	}
	dm, err := delay.New(c, &tech, wire)
	if err != nil {
		t.Fatalf("delay.New: %v", err)
	}
	pm, err := power.New(c, &tech, act, wire, 100e6)
	if err != nil {
		t.Fatalf("power.New: %v", err)
	}
	return c, eng, dm, pm
}

func TestEngineMatchesModels(t *testing.T) {
	c, eng, dm, pm := buildCase(t, 1)
	a := design.Uniform(c.N(), 1.5, 0.35, 4)

	wantTd := dm.Delays(a)
	gotTd := eng.Delays(a)
	for i := range wantTd {
		if gotTd[i] != wantTd[i] {
			t.Fatalf("gate %d delay: engine %v, model %v", i, gotTd[i], wantTd[i])
		}
	}
	wantArr, _ := dm.Arrivals(a)
	gotArr, _ := eng.Arrivals(a)
	for i := range wantArr {
		if gotArr[i] != wantArr[i] {
			t.Fatalf("gate %d arrival: engine %v, model %v", i, gotArr[i], wantArr[i])
		}
	}
	if got, want := eng.CriticalDelay(a), dm.CriticalDelay(a); got != want {
		t.Fatalf("critical delay: engine %v, model %v", got, want)
	}
	if got, want := eng.Energy(a), pm.Total(a); got != want {
		t.Fatalf("energy: engine %+v, model %+v", got, want)
	}
	wantSl := dm.Slacks(a, 10e-9)
	gotSl := eng.Slacks(a, 10e-9)
	for i := range wantSl {
		if gotSl[i] != wantSl[i] {
			t.Fatalf("gate %d slack: engine %v, model %v", i, gotSl[i], wantSl[i])
		}
	}
}

func TestProbeWidthMatchesMutateRestore(t *testing.T) {
	c, eng, dm, _ := buildCase(t, 2)
	a := design.Uniform(c.N(), 1.2, 0.3, 3)
	td := dm.Delays(a)
	for id := range c.Gates {
		if !c.Gates[id].IsLogic() {
			continue
		}
		maxIn := 0.0
		for _, f := range c.Gate(id).Fanin {
			if td[f] > maxIn {
				maxIn = td[f]
			}
		}
		for _, w := range []float64{1, 2.5, 7, 40} {
			old := a.W[id]
			a.W[id] = w
			want := dm.GateDelayWith(id, a, maxIn)
			a.W[id] = old
			if got := eng.ProbeWidth(id, a, w, maxIn); got != want {
				t.Fatalf("gate %d probe w=%v: got %v, want %v", id, w, got, want)
			}
		}
	}
}

func TestGateDelayOverrideMatchesMutateRestore(t *testing.T) {
	c, eng, dm, _ := buildCase(t, 3)
	a := design.Uniform(c.N(), 1.0, 0.25, 5)
	td := dm.Delays(a)
	maxIn := func(id int) float64 {
		m := 0.0
		for _, f := range c.Gate(id).Fanin {
			if td[f] > m {
				m = td[f]
			}
		}
		return m
	}
	for id := range c.Gates {
		g := c.Gate(id)
		if !g.IsLogic() {
			continue
		}
		// Override the gate's own width, and each fanout's width as a load.
		targets := append([]int{id}, g.Fanout...)
		for _, ov := range targets {
			wOv := a.W[ov] * 1.7
			old := a.W[ov]
			a.W[ov] = wOv
			want := dm.GateDelayWith(id, a, maxIn(id))
			a.W[ov] = old
			if got := eng.GateDelayOverride(id, a, ov, wOv, maxIn(id)); got != want {
				t.Fatalf("gate %d override ov=%d: got %v, want %v", id, ov, got, want)
			}
		}
	}
}

func TestCoeffCache(t *testing.T) {
	c, eng, _, _ := buildCase(t, 4)
	a := design.Uniform(c.N(), 1.5, 0.35, 4)
	eng.Metrics().Reset()
	eng.CriticalDelay(a)
	m := eng.Metrics()
	if m.CoeffMisses != 1 {
		t.Errorf("one voltage pair should miss once, got %d misses", m.CoeffMisses)
	}
	if m.CoeffHits != int64(c.NumLogic())-1 {
		t.Errorf("expected %d hits, got %d", c.NumLogic()-1, m.CoeffHits)
	}
	if m.GateDelayCalls != int64(c.NumLogic()) {
		t.Errorf("expected %d gate-delay calls, got %d", c.NumLogic(), m.GateDelayCalls)
	}
	if got := eng.FullEvalEquivalents(); math.Abs(got-1) > 1e-12 {
		t.Errorf("one sweep should be 1 full-eval equivalent, got %v", got)
	}
	// The cache survives a voltage change and returning to a seen pair.
	eng.Metrics().Reset()
	a.Vdd = 2.0
	eng.CriticalDelay(a)
	a.Vdd = 1.5
	eng.CriticalDelay(a)
	m = eng.Metrics()
	if m.CoeffMisses != 1 {
		t.Errorf("revisiting a cached pair should only miss the new one, got %d misses", m.CoeffMisses)
	}
}

func TestCoeffCacheOverflowClears(t *testing.T) {
	c, eng, _, _ := buildCase(t, 5)
	a := design.Uniform(c.N(), 1.5, 0.35, 4)
	// Drive far past the cap with distinct voltage pairs (the Monte-Carlo
	// yield pattern); the cache must stay bounded and keep answering. The
	// named base and step keep the swept thresholds in volts.
	for i := 0; i < maxCoeffEntries+100; i++ {
		vts := vtsBase + vtsStep*float64(i)
		a.SetVts(vts)
		eng.CriticalDelay(a)
	}
	if got := eng.cache.Len(); got > maxCoeffEntries {
		t.Fatalf("coefficient cache grew to %d entries, cap is %d", got, maxCoeffEntries)
	}
}

func TestDelayOnlyEnginePanicsOnEnergy(t *testing.T) {
	c, full, dm, _ := buildCase(t, 6)
	tech := device.Default350()
	eng, err := NewDelayOnly(c, &tech, full.Wire)
	if err != nil {
		t.Fatal(err)
	}
	a := design.Uniform(c.N(), 1.5, 0.35, 4)
	if got, want := eng.CriticalDelay(a), dm.CriticalDelay(a); got != want {
		t.Fatalf("delay-only critical delay: got %v, want %v", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Energy on a delay-only engine should panic")
		}
	}()
	eng.Energy(a)
}
