package eval

import (
	"fmt"
	"testing"

	"cmosopt/internal/activity"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/wiring"
)

// The engine's full sweeps walk the circuit level by level over the CSR
// arrays; the delay.Evaluator keeps the legacy flat topological walk over the
// Gate slices. The two must agree bit for bit — per-gate delay depends only
// on fanin values, never on sweep order — which makes the raw evaluator the
// reference implementation for the levelized rework. These property tests pin
// that equivalence across the whole benchmark suite and randomized networks.

func levelizedCase(t *testing.T, name string, seed int64) (*Engine, int) {
	t.Helper()
	cc, err := netgen.LoadNamed(name)
	if err != nil {
		cc, err = netgen.Generate(netgen.Config{
			Name: name, Gates: 300 + int(seed)*53, Depth: 8 + int(seed)%5,
			PIs: 6, POs: 5, DFFs: 3,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
	}
	if cc.IsSequential() {
		cc, err = cc.Combinational()
		if err != nil {
			t.Fatal(err)
		}
	}
	tech := device.Default350()
	act, err := activity.PropagateUniform(cc, 0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := wiring.New(wiring.Default350(), max(cc.NumLogic(), 1))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(cc, &tech, act, wire, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	return eng, cc.N()
}

func checkLevelizedAgreesWithFlatWalk(t *testing.T, eng *Engine, n int, label string) {
	t.Helper()
	dm := eng.DelayModel()
	for _, pt := range []struct{ vdd, vts, w float64 }{
		{1.0, 0.15, 2},
		{2.5, 0.45, 8},
		{1.7, 0.25, 1},
	} {
		a := design.Uniform(n, pt.vdd, pt.vts, pt.w)
		wantTd := dm.Delays(a)
		gotTd := eng.Delays(a)
		for i := range wantTd {
			if gotTd[i] != wantTd[i] {
				t.Fatalf("%s @%v: gate %d delay %v (levelized) != %v (flat walk)",
					label, pt, i, gotTd[i], wantTd[i])
			}
		}
		wantArr, _ := dm.Arrivals(a)
		gotArr, _ := eng.Arrivals(a)
		for i := range wantArr {
			if gotArr[i] != wantArr[i] {
				t.Fatalf("%s @%v: gate %d arrival %v (levelized) != %v (flat walk)",
					label, pt, i, gotArr[i], wantArr[i])
			}
		}
		if got, want := eng.CriticalDelay(a), dm.CriticalDelay(a); got != want {
			t.Fatalf("%s @%v: critical delay %v != %v", label, pt, got, want)
		}
		T := dm.CriticalDelay(a) * 1.2
		wantSl := dm.Slacks(a, T)
		gotSl := eng.Slacks(a, T)
		for i := range wantSl {
			if gotSl[i] != wantSl[i] {
				t.Fatalf("%s @%v: gate %d slack %v (levelized) != %v (flat walk)",
					label, pt, i, gotSl[i], wantSl[i])
			}
		}
	}
}

func TestLevelizedSweepMatchesFlatWalkSuite(t *testing.T) {
	for _, name := range netgen.SuiteNames() {
		eng, n := levelizedCase(t, name, 0)
		checkLevelizedAgreesWithFlatWalk(t, eng, n, name)
	}
}

func TestLevelizedSweepMatchesFlatWalkRandom(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		name := fmt.Sprintf("lvl-rand-%d", seed)
		eng, n := levelizedCase(t, name, seed)
		checkLevelizedAgreesWithFlatWalk(t, eng, n, name)
	}
}
