package eval

import (
	"sync"
	"testing"

	"cmosopt/internal/design"
)

// Base and step voltages of the concurrent-sweep test, named so the
// per-worker operating points carry the volts the bare literals would drop.
const (
	baseVdd = 1.2  //cmosvet:unit V
	stepVdd = 0.1  //cmosvet:unit V
	baseVts = 0.25 //cmosvet:unit V
	stepVts = 0.02 //cmosvet:unit V
)

func TestCloneMatchesParent(t *testing.T) {
	c, eng, _, _ := buildCase(t, 11)
	a := design.Uniform(c.N(), 1.6, 0.32, 4)
	cl := eng.Clone()

	if cl.CoeffCacheShared() != eng.CoeffCacheShared() {
		t.Fatal("clone must share the parent's coefficient cache")
	}
	wantCd, wantE := eng.CriticalDelay(a), eng.Energy(a)
	if got := cl.CriticalDelay(a); got != wantCd {
		t.Errorf("clone critical delay %v, parent %v", got, wantCd)
	}
	if got := cl.Energy(a); got != wantE {
		t.Errorf("clone energy %v, parent %v", got, wantE)
	}
	// Clone metrics start fresh and do not leak into the parent.
	if cl.Metrics().GateDelayCalls == 0 {
		t.Error("clone performed work but counted nothing")
	}
	before := eng.Metrics().GateDelayCalls
	cl.CriticalDelay(a)
	if eng.Metrics().GateDelayCalls != before {
		t.Error("clone work billed to the parent's counters")
	}
}

func TestClonesEvaluateConcurrently(t *testing.T) {
	// N clones sweep different operating points of the same circuit at once;
	// each must agree with a serial evaluation of its own point. Run under
	// -race this also exercises the shared coefficient cache.
	c, eng, _, _ := buildCase(t, 12)
	const workers = 8
	type out struct{ cd, e float64 }
	got := make([]out, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			cl := eng.Clone()
			a := design.Uniform(c.N(), baseVdd+stepVdd*float64(w%4), baseVts+stepVts*float64(w), 4)
			got[w] = out{cl.CriticalDelay(a), cl.Energy(a).Total()}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		a := design.Uniform(c.N(), baseVdd+stepVdd*float64(w%4), baseVts+stepVts*float64(w), 4)
		if cd := eng.CriticalDelay(a); cd != got[w].cd {
			t.Errorf("worker %d critical delay %v, serial %v", w, got[w].cd, cd)
		}
		if e := eng.Energy(a).Total(); e != got[w].e {
			t.Errorf("worker %d energy %v, serial %v", w, got[w].e, e)
		}
	}
}

func TestCoeffCacheConcurrentAccess(t *testing.T) {
	// Hammer one shared cache from many goroutines over overlapping keys,
	// including enough distinct keys to trip shard eviction, and check every
	// returned value against a direct model computation.
	_, eng, dm, _ := buildCase(t, 13)
	cc := eng.CoeffCacheShared()
	const workers = 8
	var wg sync.WaitGroup
	wg.Add(workers)
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			cl := eng.Clone()
			n := maxCoeffEntries/workers + 50
			for i := 0; i < n; i++ {
				// Half the keys collide across workers, half are unique.
				vdd := 1.0 + 0.001*float64(i%32)
				vts := 0.2 + 1e-6*float64(i*(1+w%2))
				got := cl.coeffs(vdd, vts)
				if want := dm.CoeffsAt(vdd, vts); got != want {
					errs <- "cached coefficients diverge from the model"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if got := cc.Len(); got > maxCoeffEntries {
		t.Errorf("shared cache holds %d entries, cap %d", got, maxCoeffEntries)
	}
}
