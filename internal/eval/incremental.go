package eval

import (
	"cmosopt/internal/design"
	"cmosopt/internal/power"
)

// Incremental evaluation. Bind attaches the engine to one assignment and
// computes its full timing and energy state once; after that, point edits
// (SetWidth, SetGateVts) re-evaluate only the gates the edit can reach:
//
//   - a width change at gate i re-prices gate i itself (its own switching
//     width) and its logic fanins (their output load includes w_i·C_t and the
//     worst interconnect branch), then propagates delay/arrival changes
//     through the fanout cone in topological-rank order, stopping wherever
//     both t_d and arrival are bitwise unchanged;
//   - a threshold change at gate i re-prices gate i only (no other gate's
//     load depends on V_TSi) and propagates the same way;
//   - energy needs no propagation at all: E_i depends on w_i, V_TSi and the
//     widths of i's fanouts, so the edited gate and (for width edits) its
//     logic fanins are the only stale entries in the per-gate energy arrays.
//
// The propagation recomputes each dirty gate with the exact same model call
// the full sweep uses, reading cached fanin values — so bound results are
// bitwise identical to a from-scratch evaluation of the same assignment
// (the eval property test pins this down).
//
// Bound accessors (BoundDelays, BoundCriticalDelay, BoundEnergy, …) read the
// tracked state without touching the device model; the full-evaluation APIs
// in eval.go keep working while bound because they use separate scratch.

// Bind attaches the engine to a for incremental evaluation and performs the
// initial full delay + energy computation. The engine holds a reference: all
// subsequent edits to a must go through SetWidth/SetGateVts/Refresh, and
// bound accessors reflect a's current state. Bind replaces any prior binding.
func (e *Engine) Bind(a *design.Assignment) {
	n := e.C.N()
	e.bound = a
	if e.curTd == nil {
		e.curTd = make([]float64, n)
		e.curArr = make([]float64, n)
		e.inDirty = make([]bool, n)
		e.dirty = make([]int, 0, 64)
	}
	if e.pm != nil && e.stE == nil {
		e.stE = make([]float64, n)
		e.dyE = make([]float64, n)
	}
	e.refreshAll()
}

// Unbind detaches the engine from its bound assignment.
func (e *Engine) Unbind() { e.bound = nil }

// Bound returns the currently bound assignment, or nil.
func (e *Engine) Bound() *design.Assignment { return e.bound }

// refreshAll recomputes the whole tracked state from the bound assignment.
//cmosvet:hotpath
func (e *Engine) refreshAll() {
	a := e.bound
	e.delaysInto(e.curTd, a)
	e.arrivalsInto(e.curArr, e.curTd)
	if e.pm != nil {
		for i := range e.C.Gates {
			e.refreshEnergy(i)
		}
	}
}

// refreshEnergy re-prices one gate's energy into the tracked arrays.
//cmosvet:hotpath
func (e *Engine) refreshEnergy(id int) {
	b := e.gateEnergy(id, e.bound)
	e.stE[id], e.dyE[id] = b.Static, b.Dynamic
}

// SetWidth sets the bound assignment's width of gate id and incrementally
// re-evaluates: the gate itself, the fanin loads, and the dirtied fanout
// cone for timing; the gate and its logic fanins for energy.
//
//cmosvet:hotpath
//cmosvet:unit w 1
func (e *Engine) SetWidth(id int, w float64) {
	a := e.bound
	if a.W[id] == w {
		return
	}
	a.W[id] = w
	e.met.IncrementalEdits++
	e.push(id)
	for _, f := range e.cs.Fanins(int32(id)) {
		if e.cs.IsLogic[f] {
			e.push(int(f))
			if e.pm != nil {
				e.refreshEnergy(int(f))
			}
		}
	}
	if e.pm != nil {
		e.refreshEnergy(id)
	}
	e.propagate()
}

// SetGateVts sets the bound assignment's threshold of gate id and
// incrementally re-evaluates its delay cone and its (static) energy.
//
//cmosvet:hotpath
//cmosvet:unit vts V
func (e *Engine) SetGateVts(id int, vts float64) {
	a := e.bound
	if a.Vts[id] == vts {
		return
	}
	a.Vts[id] = vts
	e.met.IncrementalEdits++
	e.push(id)
	if e.pm != nil {
		e.refreshEnergy(id)
	}
	e.propagate()
}

// SetVdd sets the bound assignment's global supply and refreshes the whole
// tracked state (every gate's delay and energy depends on V_dd).
//
//cmosvet:unit vdd V
func (e *Engine) SetVdd(vdd float64) {
	e.bound.Vdd = vdd
	e.met.IncrementalEdits++
	e.refreshAll()
}

// SetUniformVts sets every gate's threshold and refreshes the whole tracked
// state.
//
//cmosvet:unit vts V
func (e *Engine) SetUniformVts(vts float64) {
	e.bound.SetVts(vts)
	e.met.IncrementalEdits++
	e.refreshAll()
}

// Refresh recomputes all tracked state — for callers that edited the bound
// assignment directly (bulk edits where incremental updates would not pay).
func (e *Engine) Refresh() { e.refreshAll() }

// BoundDelays returns the tracked per-gate delays (engine-owned; do not
// modify; valid until the next edit).
//
//cmosvet:hotpath
//cmosvet:unit return s
func (e *Engine) BoundDelays() []float64 { return e.curTd }

// BoundArrivals returns the tracked per-gate worst arrival times
// (engine-owned; do not modify; valid until the next edit).
//
//cmosvet:hotpath
//cmosvet:unit return s
func (e *Engine) BoundArrivals() []float64 { return e.curArr }

// BoundCriticalDelay returns the tracked critical delay — a max over primary
// outputs, no model calls.
//
//cmosvet:hotpath
//cmosvet:unit return s
func (e *Engine) BoundCriticalDelay() float64 {
	worst := 0.0
	for _, id := range e.C.POs {
		if e.curArr[id] > worst {
			worst = e.curArr[id]
		}
	}
	return worst
}

// BoundEnergy returns the tracked whole-network energy breakdown, summed in
// gate-index order so the result is bitwise identical to Energy on the same
// assignment.
//cmosvet:hotpath
func (e *Engine) BoundEnergy() power.Breakdown {
	e.mustPower()
	var sum power.Breakdown
	for i := range e.stE {
		sum.Static += e.stE[i]
		sum.Dynamic += e.dyE[i]
	}
	return sum
}

// BoundGateEnergy returns the tracked energy breakdown of one gate.
//cmosvet:hotpath
func (e *Engine) BoundGateEnergy(id int) power.Breakdown {
	e.mustPower()
	return power.Breakdown{Static: e.stE[id], Dynamic: e.dyE[id]}
}

// BoundSlacks computes slacks against cycle budget T from the tracked delays
// and arrivals — backward graph propagation only, no device-model calls. The
// returned slice is engine scratch (valid until the next Engine call).
//
//cmosvet:hotpath
//cmosvet:unit T s
//cmosvet:unit return s
func (e *Engine) BoundSlacks(T float64) []float64 {
	return e.slacksFrom(e.curTd, e.curArr, T)
}

// push adds a gate to the dirty heap unless it is already queued.
//cmosvet:hotpath
func (e *Engine) push(id int) {
	if e.inDirty[id] {
		return
	}
	e.inDirty[id] = true
	e.dirty = append(e.dirty, id)
	// Sift up by topological rank.
	d, r := e.dirty, e.cs.Rank
	i := len(d) - 1
	for i > 0 {
		p := (i - 1) / 2
		if r[d[p]] <= r[d[i]] {
			break
		}
		d[p], d[i] = d[i], d[p]
		i = p
	}
}

// pop removes and returns the dirty gate with the smallest topological rank.
//cmosvet:hotpath
func (e *Engine) pop() int {
	d, r := e.dirty, e.cs.Rank
	id := d[0]
	last := len(d) - 1
	d[0] = d[last]
	e.dirty = d[:last]
	d = e.dirty
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		s := i
		if l < last && r[d[l]] < r[d[s]] {
			s = l
		}
		if rt < last && r[d[rt]] < r[d[s]] {
			s = rt
		}
		if s == i {
			break
		}
		d[s], d[i] = d[i], d[s]
		i = s
	}
	e.inDirty[id] = false
	return id
}

// propagate drains the dirty heap in topological-rank order, re-evaluating
// each gate from its fanins' tracked values and pushing fanouts whenever the
// gate's delay or arrival changed. Rank ordering guarantees each gate is
// processed at most once per drain: pops are nondecreasing in rank and every
// push targets a strictly higher rank than the gate that caused it.
//cmosvet:hotpath
func (e *Engine) propagate() {
	a := e.bound
	cs := e.cs
	drained := int64(0)
	for len(e.dirty) > 0 {
		id := e.pop()
		e.met.DirtyGates++
		drained++
		fanins := cs.Fanins(int32(id))
		newTd := 0.0
		if cs.IsLogic[id] {
			maxIn := 0.0
			for _, f := range fanins {
				if e.curTd[f] > maxIn {
					maxIn = e.curTd[f]
				}
			}
			newTd = e.gateDelay(id, a, a.W[id], maxIn)
		}
		maxArr := 0.0
		for _, f := range fanins {
			if e.curArr[f] > maxArr {
				maxArr = e.curArr[f]
			}
		}
		newArr := maxArr + newTd
		if newTd == e.curTd[id] && newArr == e.curArr[id] {
			continue
		}
		e.curTd[id], e.curArr[id] = newTd, newArr
		for _, f := range cs.Fanouts(int32(id)) {
			e.push(int(f))
		}
	}
	if e.sink != nil && drained > 0 {
		e.sink.dirty.Observe(drained)
	}
}
