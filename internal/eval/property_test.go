package eval

import (
	"math"
	"math/rand"
	"testing"

	"cmosopt/internal/design"
)

// relClose reports whether got matches want within 1e-12 relative tolerance
// (infinities of the same sign match exactly — unswitchable operating points
// have +Inf delay).
func relClose(got, want float64) bool {
	if got == want {
		return true
	}
	if math.IsInf(want, 0) || math.IsInf(got, 0) || math.IsNaN(want) || math.IsNaN(got) {
		return false
	}
	scale := math.Max(math.Abs(got), math.Abs(want))
	return math.Abs(got-want) <= 1e-12*scale
}

// TestIncrementalMatchesFull drives random edit sequences (widths, per-gate
// thresholds, global supply and threshold moves) against bound engines on
// random circuits and checks after every edit that the incrementally
// maintained state matches a from-scratch recomputation within 1e-12
// relative tolerance: per-gate delays, arrivals, critical delay, slacks and
// the energy breakdown.
func TestIncrementalMatchesFull(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			c, eng, dm, pm := buildCase(t, 100+seed)
			tech := eng.Tech
			rng := rand.New(rand.NewSource(seed))

			a := design.Uniform(c.N(), 1.5, 0.35, 4)
			eng.Bind(a)

			randW := func() float64 {
				return tech.WMin + rng.Float64()*(tech.WMax-tech.WMin)
			}
			randVts := func() float64 {
				return tech.VtsMin + rng.Float64()*(tech.VtsMax-tech.VtsMin)
			}
			randVdd := func() float64 {
				return tech.VddMin + rng.Float64()*(tech.VddMax-tech.VddMin)
			}

			for step := 0; step < 120; step++ {
				id := rng.Intn(c.N())
				switch rng.Intn(6) {
				case 0, 1, 2: // width edits dominate real optimizer traffic
					eng.SetWidth(id, randW())
				case 3:
					eng.SetGateVts(id, randVts())
				case 4:
					eng.SetVdd(randVdd())
				default:
					eng.SetUniformVts(randVts())
				}

				// Reference: the pure model evaluators, from scratch.
				wantArr, wantTd := dm.Arrivals(a)
				gotTd, gotArr := eng.BoundDelays(), eng.BoundArrivals()
				for i := range wantTd {
					if !relClose(gotTd[i], wantTd[i]) {
						t.Fatalf("seed %d step %d: gate %d delay %v, want %v", seed, step, i, gotTd[i], wantTd[i])
					}
					if !relClose(gotArr[i], wantArr[i]) {
						t.Fatalf("seed %d step %d: gate %d arrival %v, want %v", seed, step, i, gotArr[i], wantArr[i])
					}
				}
				if got, want := eng.BoundCriticalDelay(), dm.CriticalDelay(a); !relClose(got, want) {
					t.Fatalf("seed %d step %d: critical delay %v, want %v", seed, step, got, want)
				}
				gotE, wantE := eng.BoundEnergy(), pm.Total(a)
				if !relClose(gotE.Static, wantE.Static) || !relClose(gotE.Dynamic, wantE.Dynamic) {
					t.Fatalf("seed %d step %d: energy %+v, want %+v", seed, step, gotE, wantE)
				}
				if step%10 == 0 {
					T := 5e-9
					wantSl := dm.Slacks(a, T)
					gotSl := eng.BoundSlacks(T)
					for i := range wantSl {
						if !relClose(gotSl[i], wantSl[i]) {
							t.Fatalf("seed %d step %d: gate %d slack %v, want %v", seed, step, i, gotSl[i], wantSl[i])
						}
					}
				}
			}
		})
	}
}

// TestIncrementalSkipsUntouchedCone checks the economics, not just the
// answer: a width edit at a primary-output gate must not re-evaluate the
// whole circuit.
func TestIncrementalSkipsUntouchedCone(t *testing.T) {
	c, eng, _, _ := buildCase(t, 42)
	a := design.Uniform(c.N(), 1.5, 0.35, 4)
	eng.Bind(a)

	// Pick a PO-driving gate with no internal fanout: its cone is itself plus
	// its logic fanins.
	target := -1
	for _, id := range c.POs {
		if c.Gate(id).IsLogic() && len(c.Gate(id).Fanout) == 0 {
			target = id
			break
		}
	}
	if target < 0 {
		t.Skip("no fanout-free PO gate in this circuit")
	}
	eng.Metrics().Reset()
	eng.SetWidth(target, a.W[target]*2)
	m := eng.Metrics()

	// Upper bound: everything fanout-reachable from the edited gate or its
	// logic fanins (whose loads changed). Anything beyond that would mean the
	// engine re-evaluated gates the edit cannot influence.
	reach := make([]bool, c.N())
	var mark func(id int)
	mark = func(id int) {
		if reach[id] {
			return
		}
		reach[id] = true
		for _, f := range c.Gate(id).Fanout {
			mark(f)
		}
	}
	mark(target)
	cone := int64(0)
	for _, f := range c.Gate(target).Fanin {
		if c.Gate(f).IsLogic() {
			mark(f)
		}
	}
	for id, r := range reach {
		if r && c.Gate(id).IsLogic() {
			cone++
		}
	}
	if m.DirtyGates > cone {
		t.Errorf("edit at sink gate dirtied %d gates, cone bound is %d", m.DirtyGates, cone)
	}
	if m.GateDelayCalls > cone {
		t.Errorf("edit at sink gate cost %d delay calls, cone bound is %d", m.GateDelayCalls, cone)
	}
	if cone >= int64(c.NumLogic()) {
		t.Logf("cone covers the whole circuit; bound is vacuous for this seed")
	}
	if m.FullDelaySweeps != 0 {
		t.Errorf("incremental edit triggered %d full sweeps", m.FullDelaySweeps)
	}
}
