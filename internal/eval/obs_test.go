package eval

import (
	"testing"

	"cmosopt/internal/design"
	"cmosopt/internal/obs"
)

// TestObsDoesNotChangeResults is the instrumentation safety contract: an
// engine with a sink attached must produce bit-identical numbers to one
// without.
func TestObsDoesNotChangeResults(t *testing.T) {
	c, plain, _, _ := buildCase(t, 11)
	_, instr, _, _ := buildCase(t, 11)
	instr.AttachObs(obs.NewRegistry())

	a := design.Uniform(c.N(), 1.4, 0.32, 4)
	wantTd, gotTd := plain.Delays(a), instr.Delays(a)
	for i := range wantTd {
		if gotTd[i] != wantTd[i] {
			t.Fatalf("gate %d delay diverged under instrumentation: %v vs %v", i, gotTd[i], wantTd[i])
		}
	}
	if got, want := instr.Energy(a), plain.Energy(a); got != want {
		t.Fatalf("energy diverged under instrumentation: %+v vs %+v", got, want)
	}
	plain.Bind(a.Clone())
	instr.Bind(a.Clone())
	for id := range c.Gates {
		if c.Gates[id].IsLogic() {
			plain.SetWidth(id, 2.5)
			instr.SetWidth(id, 2.5)
			break
		}
	}
	if got, want := instr.BoundCriticalDelay(), plain.BoundCriticalDelay(); got != want {
		t.Fatalf("bound critical delay diverged: %v vs %v", got, want)
	}
}

func TestFlushObsExportsDeltas(t *testing.T) {
	c, eng, _, _ := buildCase(t, 12)
	reg := obs.NewRegistry()
	eng.AttachObs(reg)

	a := design.Uniform(c.N(), 1.5, 0.35, 4)
	eng.Delays(a)
	eng.Energy(a)
	eng.FlushObs()

	if v := reg.Counter("eval.full_delay_sweeps").Value(); v != 1 {
		t.Errorf("full_delay_sweeps = %d, want 1", v)
	}
	if v := reg.Counter("eval.full_energy_sweeps").Value(); v != 1 {
		t.Errorf("full_energy_sweeps = %d, want 1", v)
	}
	if v := reg.Counter("eval.gate_delay_calls").Value(); v < int64(c.NumLogic()) {
		t.Errorf("gate_delay_calls = %d, want >= %d", v, c.NumLogic())
	}
	if v := reg.Counter("eval.cache.entries").Value(); v < 1 {
		t.Errorf("cache.entries = %d, want >= 1", v)
	}

	// A second flush with no new work must add nothing: counters are deltas
	// against the per-engine baseline.
	before := reg.Counter("eval.gate_delay_calls").Value()
	eng.FlushObs()
	if v := reg.Counter("eval.gate_delay_calls").Value(); v != before {
		t.Errorf("idle flush moved gate_delay_calls %d -> %d", before, v)
	}

	// The live histograms record without flushing.
	snap := reg.Snapshot()
	h, ok := snap.Histograms["eval.full_sweep_ns"]
	if !ok || h.Count < 1 {
		t.Errorf("eval.full_sweep_ns histogram missing or empty: %+v", h)
	}
}

func TestFlushObsOnlyFromPrimary(t *testing.T) {
	c, eng, _, _ := buildCase(t, 13)
	reg := obs.NewRegistry()
	eng.AttachObs(reg)

	a := design.Uniform(c.N(), 1.5, 0.35, 4)
	clone := eng.Clone()
	clone.Delays(a)
	clone.FlushObs() // must be a no-op: clones are absorbed by their parent
	if v := reg.Counter("eval.full_delay_sweeps").Value(); v != 0 {
		t.Fatalf("clone flush exported %d sweeps, want 0", v)
	}

	// The driver pattern: absorb the clone's Metrics, then flush the parent.
	eng.Metrics().Add(*clone.Metrics())
	eng.FlushObs()
	if v := reg.Counter("eval.full_delay_sweeps").Value(); v != 1 {
		t.Fatalf("after absorb+flush, full_delay_sweeps = %d, want 1", v)
	}
}

func TestAttachObsDetach(t *testing.T) {
	c, eng, _, _ := buildCase(t, 14)
	reg := obs.NewRegistry()
	eng.AttachObs(reg)
	eng.AttachObs(nil)

	a := design.Uniform(c.N(), 1.5, 0.35, 4)
	eng.Delays(a)
	eng.FlushObs() // detached: must not panic, must export nothing
	if v := reg.Counter("eval.full_delay_sweeps").Value(); v != 0 {
		t.Fatalf("detached engine exported %d sweeps", v)
	}
}

func TestShardStatsMonotonic(t *testing.T) {
	c, eng, _, _ := buildCase(t, 15)
	a := design.Uniform(c.N(), 1.5, 0.35, 4)
	// A uniform assignment touches the shared cache exactly once per engine:
	// the first lookup misses, every later one stops at the engine's one-entry
	// memo. A clone has a cold memo, so its first lookup is a shard hit.
	eng.Delays(a)
	var hits, misses int64
	for _, st := range eng.cache.ShardStats() {
		hits += st.Hits
		misses += st.Misses
	}
	if misses != 1 || hits != 0 {
		t.Errorf("after first sweep: %d hits, %d misses; want 0/1", hits, misses)
	}
	eng.Clone().Delays(a)
	hits, misses = 0, 0
	for _, st := range eng.cache.ShardStats() {
		hits += st.Hits
		misses += st.Misses
	}
	if hits != 1 || misses != 1 {
		t.Errorf("after clone sweep: %d hits, %d misses; want 1/1", hits, misses)
	}
}
