package eval

import (
	"fmt"

	"cmosopt/internal/obs"
)

// Observability. An engine optionally carries a sink into an obs.Registry;
// nothing here is ever read back by evaluation, so attaching a sink cannot
// change any result. Two kinds of signals flow out:
//
//   - histograms, recorded live at the instrumentation site (full-sweep
//     latency in delaysInto, dirty-cone drain sizes in propagate). These are
//     wall-clock truth: clones share the sink, so speculative work that the
//     determinism contract excludes from Metrics billing still shows up here;
//   - counters, exported by FlushObs as deltas of the engine's Metrics since
//     the previous flush. The billed Metrics stay the determinism-relevant
//     effort meter; the registry counters mirror them for manifests and
//     expvar without ever being consulted by an algorithm.
//
// The sink pointer is shared by Clone (histograms are concurrency-safe), but
// the flushed baseline is per-engine, so a clone whose Metrics are absorbed
// into its parent does not double-count: clones are never flushed themselves,
// and the parent's next FlushObs covers the absorbed work.

// obsSink holds the registry plus the pre-resolved histograms the hot paths
// record into (resolved once at attach time to keep map lookups off the
// per-sweep path).
type obsSink struct {
	reg     *obs.Registry
	sweepNS *obs.Histogram
	dirty   *obs.Histogram
}

// AttachObs connects the engine to a metrics registry (nil detaches). Only
// work performed after the attach is exported: the flush baseline is set to
// the engine's current Metrics.
func (e *Engine) AttachObs(reg *obs.Registry) {
	if reg == nil {
		e.sink = nil
		return
	}
	e.sink = &obsSink{
		reg:     reg,
		sweepNS: reg.Histogram("eval.full_sweep_ns"),
		dirty:   reg.Histogram("eval.dirty_cone_gates"),
	}
	e.flushed = e.met
}

// FlushObs exports the engine's Metrics growth since the last flush as
// registry counters, plus the shared coefficient cache's per-shard hit/miss
// statistics (absolute gauges — the cache is shared by all clones, so Set is
// idempotent across engines). No-op without an attached sink, and no-op on
// clones: a clone's Metrics are absorbed into its parent engine by the
// drivers, so only the primary engine flushes — each unit of work is
// exported exactly once.
func (e *Engine) FlushObs() {
	s := e.sink
	if s == nil || !e.primary {
		return
	}
	d, f := e.met, e.flushed
	add := func(name string, v int64) {
		if v != 0 {
			s.reg.Counter(name).Add(v)
		}
	}
	add("eval.gate_delay_calls", d.GateDelayCalls-f.GateDelayCalls)
	add("eval.gate_energy_calls", d.GateEnergyCalls-f.GateEnergyCalls)
	add("eval.full_delay_sweeps", d.FullDelaySweeps-f.FullDelaySweeps)
	add("eval.full_energy_sweeps", d.FullEnergySweeps-f.FullEnergySweeps)
	add("eval.width_probes", d.WidthProbes-f.WidthProbes)
	add("eval.incremental_edits", d.IncrementalEdits-f.IncrementalEdits)
	add("eval.dirty_gates", d.DirtyGates-f.DirtyGates)
	add("eval.coeff_hits", d.CoeffHits-f.CoeffHits)
	add("eval.coeff_misses", d.CoeffMisses-f.CoeffMisses)
	e.flushed = d

	stats := e.cache.ShardStats()
	var hits, misses, entries int64
	for i, st := range stats {
		hits += st.Hits
		misses += st.Misses
		entries += int64(st.Entries)
		if st.Hits != 0 || st.Misses != 0 {
			s.reg.Counter(fmt.Sprintf("eval.cache.shard%02d.hits", i)).Set(st.Hits)
			s.reg.Counter(fmt.Sprintf("eval.cache.shard%02d.misses", i)).Set(st.Misses)
		}
	}
	s.reg.Counter("eval.cache.hits").Set(hits)
	s.reg.Counter("eval.cache.misses").Set(misses)
	s.reg.Counter("eval.cache.entries").Set(entries)
}
