// Package eval is the unified evaluation engine: one object that owns the
// circuit, technology, wiring model, activity profile and clock, and serves
// combined delay + energy evaluation to every optimizer. The pure Appendix-A
// model formulas stay in internal/delay and internal/power; the engine is the
// only place that constructs those evaluators, and it adds the machinery that
// makes iterative optimization cheap:
//
//   - per-engine scratch buffers, so steady-state full-circuit evaluation
//     (Delays, Arrivals, CriticalDelay, Slacks, Energy) is allocation-free;
//   - a per-(V_dd, V_TS) device-coefficient cache: the slope coefficient,
//     drive current I_Dw and leakage I_off depend on the voltage pair only,
//     yet cost three transcendental evaluations per gate-delay call when
//     recomputed inline — Procedure 2 probes every gate dozens of times at a
//     fixed voltage pair, so one cached triple serves thousands of calls;
//   - width-override probes (ProbeWidth, GateDelayOverride) that answer
//     "what would this gate's delay be at width w" without the
//     mutate-and-restore pattern on the assignment;
//   - incremental re-evaluation (Bind/SetWidth in incremental.go): editing
//     one gate's width dirties only its fanin loads and its fanout cone, not
//     the whole circuit;
//   - a standardized evaluation-effort meter (Metrics): every gate-delay
//     model call is counted, and FullEvalEquivalents converts the count into
//     full-circuit-evaluation units, the paper's O(M³) currency.
//
// An Engine is NOT safe for concurrent use: the scratch buffers and the
// tracked state are engine-owned. Give each goroutine its own Engine —
// Clone (clone.go) makes that cheap by sharing every immutable structure
// (circuit, technology, activity, wiring, model evaluators, topological
// order) and the concurrency-safe device-coefficient cache, allocating only
// fresh scratch. Parallel drivers build one clone per worker through
// internal/parallel.
package eval

import (
	"fmt"
	"math"
	"time"

	"cmosopt/internal/activity"
	"cmosopt/internal/circuit"
	"cmosopt/internal/delay"
	"cmosopt/internal/design"
	"cmosopt/internal/device"
	"cmosopt/internal/power"
	"cmosopt/internal/wiring"
)

// maxCoeffEntries bounds the shared coefficient cache. Optimizers visit a
// handful of voltage pairs per run, but Monte-Carlo studies draw a fresh V_TS
// per gate per die; a shard that fills is cleared rather than grown without
// bound (see clone.go).
const maxCoeffEntries = 4096

type coeffKey struct {
	vdd float64 //cmosvet:unit V
	vts float64 //cmosvet:unit V
}

// Engine evaluates delay and energy for one circuit under one technology,
// wiring model, activity profile and clock frequency.
type Engine struct {
	C    *circuit.Circuit
	Tech *device.Tech
	Act  *activity.Profile
	Wire *wiring.Model
	Fc   float64 //cmosvet:unit Hz

	dm *delay.Evaluator
	pm *power.Evaluator // nil for a delay-only engine

	cs       *circuit.CSR // levelized struct-of-arrays view, shared by clones
	numLogic int

	// Device-coefficient cache: a private single-entry fast path (within one
	// optimizer probe sequence nearly every call shares one voltage pair)
	// over a sharded concurrency-safe map shared with all clones.
	lastKey   coeffKey
	lastCoeff delay.Coeffs
	haveLast  bool
	cache     *CoeffCache

	// Scratch for the full-evaluation APIs (valid until the next Engine call).
	td    []float64 //cmosvet:unit s
	arr   []float64 //cmosvet:unit s
	req   []float64 //cmosvet:unit s
	slack []float64 //cmosvet:unit s

	// Tracked state for incremental evaluation (see incremental.go).
	bound  *design.Assignment
	curTd  []float64 //cmosvet:unit s
	curArr []float64 //cmosvet:unit s
	stE    []float64 //cmosvet:unit J
	dyE    []float64 //cmosvet:unit J
	dirty         []int // binary heap of gate IDs ordered by rank
	inDirty       []bool

	met Metrics

	// Optional observability sink (obs.go). Write-only from evaluation's
	// perspective: nothing here feeds back into any result.
	sink    *obsSink
	flushed Metrics // Metrics already exported by FlushObs
	primary bool    // set by New/NewDelayOnly, false on clones (see FlushObs)
}

// New builds the evaluation engine for a combinational circuit, constructing
// the delay and power model evaluators internally.
//
//cmosvet:unit fc Hz
func New(c *circuit.Circuit, tech *device.Tech, act *activity.Profile, wire *wiring.Model, fc float64) (*Engine, error) {
	e, err := NewDelayOnly(c, tech, wire)
	if err != nil {
		return nil, err
	}
	pm, err := power.New(c, tech, act, wire, fc)
	if err != nil {
		return nil, err
	}
	e.Act = act
	e.Fc = fc
	e.pm = pm
	return e, nil
}

// NewDelayOnly builds an engine without an energy model (no activity profile
// or clock needed) — enough for timing-only consumers such as the logic
// simulator's tests. Energy methods panic on a delay-only engine.
func NewDelayOnly(c *circuit.Circuit, tech *device.Tech, wire *wiring.Model) (*Engine, error) {
	dm, err := delay.New(c, tech, wire)
	if err != nil {
		return nil, err
	}
	cs, err := c.CSR()
	if err != nil {
		return nil, err
	}
	return &Engine{
		C:        c,
		Tech:     tech,
		Wire:     wire,
		dm:       dm,
		cs:       cs,
		numLogic: c.NumLogic(),
		cache:    NewCoeffCache(),
		primary:  true,
		td:       make([]float64, c.N()),
		arr:      make([]float64, c.N()),
	}, nil
}

// DelayModel exposes the underlying pure delay evaluator for model-level
// analyses the engine does not cache (rise/fall resolution, the simulator).
func (e *Engine) DelayModel() *delay.Evaluator { return e.dm }

// PowerModel exposes the underlying pure energy evaluator.
func (e *Engine) PowerModel() *power.Evaluator { return e.pm }

// Metrics returns the engine's evaluation counters.
func (e *Engine) Metrics() *Metrics { return &e.met }

// FullEvalEquivalents converts the gate-delay call count into full-circuit
// evaluation units: one unit is one delay-model call per logic gate.
//
//cmosvet:unit return 1
func (e *Engine) FullEvalEquivalents() float64 {
	return float64(e.met.GateDelayCalls) / float64(max(e.numLogic, 1))
}

// coeffs returns the cached device coefficients of one voltage pair.
//
//cmosvet:hotpath
//cmosvet:unit vdd V
//cmosvet:unit vts V
func (e *Engine) coeffs(vdd, vts float64) delay.Coeffs {
	k := coeffKey{vdd, vts}
	if e.haveLast && k == e.lastKey {
		e.met.CoeffHits++
		return e.lastCoeff
	}
	c, ok := e.cache.lookup(k)
	if !ok {
		// CoeffsAt is a pure function of the pair, so a concurrent clone
		// computing the same key stores an identical value — losing the
		// store race never changes a result.
		e.met.CoeffMisses++
		c = e.dm.CoeffsAt(vdd, vts)
		e.cache.store(k, c)
	} else {
		e.met.CoeffHits++
	}
	e.lastKey, e.lastCoeff, e.haveLast = k, c, true
	return c
}

// gateDelay evaluates gate id's delay at width w through the coefficient
// cache. It is the single funnel every delay number flows through, which is
// what makes the GateDelayCalls counter a faithful effort meter.
//
//cmosvet:hotpath
//cmosvet:unit w 1
//cmosvet:unit maxFaninDelay s
//cmosvet:unit return s
func (e *Engine) gateDelay(id int, a *design.Assignment, w, maxFaninDelay float64) float64 {
	e.met.GateDelayCalls++
	return e.dm.GateDelayAt(id, a, w, -1, 0, maxFaninDelay, e.coeffs(a.VddAt(id), a.Vts[id]))
}

// GateDelayWith returns t_di of one gate given the largest fanin gate delay,
// evaluated through the coefficient cache. Input gates have zero delay.
//
//cmosvet:hotpath
//cmosvet:unit maxFaninDelay s
//cmosvet:unit return s
func (e *Engine) GateDelayWith(id int, a *design.Assignment, maxFaninDelay float64) float64 {
	if !e.cs.IsLogic[id] {
		return 0
	}
	return e.gateDelay(id, a, a.W[id], maxFaninDelay)
}

// ProbeWidth returns gate id's delay as if its width were w, without touching
// the assignment — the width-override API that replaces the save/restore
// mutation pattern in the width solver.
//
//cmosvet:hotpath
//cmosvet:unit w 1
//cmosvet:unit maxFaninDelay s
//cmosvet:unit return s
func (e *Engine) ProbeWidth(id int, a *design.Assignment, w, maxFaninDelay float64) float64 {
	e.met.WidthProbes++
	return e.gateDelay(id, a, w, maxFaninDelay)
}

// GateDelayOverride returns gate id's delay with gate ov's width taken as wOv
// wherever it appears: id's own switching width when ov == id, or the input
// load ov presents when it is one of id's fanouts. ov = -1 evaluates the
// assignment as is. Sensitivity sizers use this to score a neighbor's width
// move without mutating the assignment.
//
//cmosvet:hotpath
//cmosvet:unit wOv 1
//cmosvet:unit maxFaninDelay s
//cmosvet:unit return s
func (e *Engine) GateDelayOverride(id int, a *design.Assignment, ov int, wOv, maxFaninDelay float64) float64 {
	if !e.cs.IsLogic[id] {
		return 0
	}
	e.met.WidthProbes++
	e.met.GateDelayCalls++
	w := a.W[id]
	if ov == id {
		w = wOv
	}
	return e.dm.GateDelayAt(id, a, w, ov, wOv, maxFaninDelay, e.coeffs(a.VddAt(id), a.Vts[id]))
}

// SlopeCoeff returns the input-rise-time coefficient of one voltage pair.
//
//cmosvet:unit vdd V
//cmosvet:unit vts V
//cmosvet:unit return 1
func (e *Engine) SlopeCoeff(vdd, vts float64) float64 { return e.dm.SlopeCoeff(vdd, vts) }

// delaysInto computes per-gate delays into dst, walking the CSR level by
// level. Within a level the gates follow the topological order, so the
// sequence of model calls — and therefore every cached value and counter —
// matches the legacy flat walk exactly.
//
//cmosvet:hotpath
//cmosvet:unit dst s
func (e *Engine) delaysInto(dst []float64, a *design.Assignment) {
	e.met.FullDelaySweeps++
	var t0 time.Time
	if e.sink != nil {
		t0 = time.Now() //cmosvet:allow determinism — sweep latency feeds an obs histogram only, never a result
	}
	cs := e.cs
	for _, id := range cs.LevelGates(0) {
		dst[id] = 0 // level 0 is inputs (and zero-delay pseudo-inputs)
	}
	for l := 1; l < cs.NumLevels(); l++ {
		for _, id := range cs.LevelGates(l) {
			if !cs.IsLogic[id] {
				dst[id] = 0 // a feed-forward DFF in a delay-only engine
				continue
			}
			maxIn := 0.0
			for _, f := range cs.Fanins(id) {
				if dst[f] > maxIn {
					maxIn = dst[f]
				}
			}
			dst[id] = e.gateDelay(int(id), a, a.W[id], maxIn)
		}
	}
	if e.sink != nil {
		//cmosvet:allow determinism — sweep latency feeds an obs histogram only, never a result
		e.sink.sweepNS.ObserveDuration(time.Since(t0))
	}
}

// arrivalsInto computes worst arrival times from the delays in td into dst.
//
//cmosvet:hotpath
//cmosvet:unit dst s
//cmosvet:unit td s
func (e *Engine) arrivalsInto(dst, td []float64) {
	cs := e.cs
	for _, id := range cs.LevelGates(0) {
		dst[id] = td[id]
	}
	for l := 1; l < cs.NumLevels(); l++ {
		for _, id := range cs.LevelGates(l) {
			maxIn := 0.0
			for _, f := range cs.Fanins(id) {
				if dst[f] > maxIn {
					maxIn = dst[f]
				}
			}
			dst[id] = maxIn + td[id]
		}
	}
}

// Delays returns the per-gate delay t_di for the whole network. The returned
// slice is engine scratch: read it before the next Engine call, copy to keep.
//
//cmosvet:hotpath
//cmosvet:unit return s
func (e *Engine) Delays(a *design.Assignment) []float64 {
	e.delaysInto(e.td, a)
	return e.td
}

// Arrivals returns per-gate worst arrival times and per-gate delays, in
// engine scratch (valid until the next Engine call).
//
//cmosvet:hotpath
//cmosvet:unit return1 s
//cmosvet:unit return2 s
func (e *Engine) Arrivals(a *design.Assignment) (arr, td []float64) {
	e.delaysInto(e.td, a)
	e.arrivalsInto(e.arr, e.td)
	return e.arr, e.td
}

// CriticalDelay returns the worst path delay from any input to any primary
// output, allocation-free.
//
//cmosvet:hotpath
//cmosvet:unit return s
func (e *Engine) CriticalDelay(a *design.Assignment) float64 {
	arr, _ := e.Arrivals(a)
	worst := 0.0
	for _, id := range e.C.POs {
		if arr[id] > worst {
			worst = arr[id]
		}
	}
	return worst
}

// CriticalPath returns the gate IDs of a worst path and its delay
// (delegated to the model evaluator; this path is not performance-critical).
//
//cmosvet:unit return2 s
func (e *Engine) CriticalPath(a *design.Assignment) ([]int, float64) {
	e.met.FullDelaySweeps++
	e.met.GateDelayCalls += int64(e.numLogic)
	return e.dm.CriticalPath(a)
}

// Slacks runs a full required-time analysis against the cycle budget T into
// engine scratch (valid until the next Engine call).
//
//cmosvet:hotpath
//cmosvet:unit T s
//cmosvet:unit return s
func (e *Engine) Slacks(a *design.Assignment, T float64) []float64 {
	e.delaysInto(e.td, a)
	e.arrivalsInto(e.arr, e.td)
	return e.slacksFrom(e.td, e.arr, T)
}

// slacksFrom computes slacks from already-known delays and arrivals — pure
// graph propagation, no device-model calls.
//
//cmosvet:hotpath
//cmosvet:unit td s
//cmosvet:unit arr s
//cmosvet:unit T s
//cmosvet:unit return s
func (e *Engine) slacksFrom(td, arr []float64, T float64) []float64 {
	//cmosvet:allow hotalloc — one-time lazy init of slack scratch; every later sweep reuses it (0 allocs/op steady state)
	if e.req == nil {
		e.req = make([]float64, e.C.N())
		e.slack = make([]float64, e.C.N())
	}
	req := e.req
	for i := range req {
		req[i] = math.Inf(1)
	}
	for _, id := range e.C.POs {
		if T < req[id] {
			req[id] = T
		}
	}
	cs := e.cs
	for l := cs.NumLevels() - 1; l >= 0; l-- {
		lg := cs.LevelGates(l)
		for i := len(lg) - 1; i >= 0; i-- {
			id := lg[i]
			for _, f := range cs.Fanouts(id) {
				if r := req[f] - td[f]; r < req[id] {
					req[id] = r
				}
			}
		}
	}
	for i := range e.slack {
		e.slack[i] = req[i] - arr[i]
	}
	return e.slack
}

// MeetsBudgets reports whether every logic gate's delay is within its
// per-gate budget, allocation-free.
//
//cmosvet:hotpath
//cmosvet:unit budget s
func (e *Engine) MeetsBudgets(a *design.Assignment, budget []float64) bool {
	e.delaysInto(e.td, a)
	for i, logic := range e.cs.IsLogic {
		if logic && e.td[i] > budget[i] {
			return false
		}
	}
	return true
}

// gateEnergy evaluates one gate's energy through the coefficient cache.
//cmosvet:hotpath
func (e *Engine) gateEnergy(id int, a *design.Assignment) power.Breakdown {
	if !e.cs.IsLogic[id] {
		return power.Breakdown{}
	}
	e.met.GateEnergyCalls++
	k := e.coeffs(a.VddAt(id), a.Vts[id])
	return e.pm.GateEnergyCoeff(id, a, k.Ioff)
}

// GateEnergy returns the per-cycle energy breakdown of one gate.
func (e *Engine) GateEnergy(id int, a *design.Assignment) power.Breakdown {
	e.mustPower()
	return e.gateEnergy(id, a)
}

// Energy returns the whole-network per-cycle energy breakdown (the paper's
// cost function Σ E_si + E_di), evaluated through the coefficient cache.
//cmosvet:hotpath
func (e *Engine) Energy(a *design.Assignment) power.Breakdown {
	e.mustPower()
	e.met.FullEnergySweeps++
	var sum power.Breakdown
	for i := range e.C.Gates {
		sum.Add(e.gateEnergy(i, a))
	}
	return sum
}

// AvgPower converts a per-cycle energy into average power (W) at the
// engine's clock frequency.
//
//cmosvet:unit return W
func (e *Engine) AvgPower(b power.Breakdown) float64 {
	e.mustPower()
	return e.pm.Power(b)
}

func (e *Engine) mustPower() {
	if e.pm == nil {
		panic(fmt.Sprintf("eval: engine for %q was built with NewDelayOnly; energy is unavailable", e.C.Name))
	}
}
