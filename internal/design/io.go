package design

import (
	"encoding/json"
	"fmt"
	"io"

	"cmosopt/internal/circuit"
)

// fileFormat is the on-disk JSON representation of an optimized design.
// Per-gate values are keyed by gate *name*, not ID, so a saved design stays
// valid across netlist re-parses that renumber gates.
type fileFormat struct {
	Circuit string             `json:"circuit"`
	Vdd     float64            `json:"vdd"`
	VddPer  map[string]float64 `json:"vddPer,omitempty"`
	Vts     map[string]float64 `json:"vts"`
	W       map[string]float64 `json:"w"`
}

// Save writes the assignment for the given circuit as JSON. Only logic gates
// are recorded.
func Save(w io.Writer, c *circuit.Circuit, a *Assignment) error {
	if len(a.Vts) != c.N() || len(a.W) != c.N() {
		return fmt.Errorf("design: assignment sized %d, circuit has %d gates", len(a.Vts), c.N())
	}
	f := fileFormat{
		Circuit: c.Name,
		Vdd:     a.Vdd,
		Vts:     make(map[string]float64),
		W:       make(map[string]float64),
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		if !g.IsLogic() {
			continue
		}
		f.Vts[g.Name] = a.Vts[i]
		f.W[g.Name] = a.W[i]
		if a.VddPer != nil {
			if f.VddPer == nil {
				f.VddPer = make(map[string]float64)
			}
			f.VddPer[g.Name] = a.VddPer[i]
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&f)
}

// Load reads a saved design and binds it to the circuit by gate name. Every
// logic gate must be covered; extra names are rejected (they indicate a
// mismatched netlist).
func Load(r io.Reader, c *circuit.Circuit) (*Assignment, error) {
	var f fileFormat
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("design: %w", err)
	}
	if f.Circuit != "" && f.Circuit != c.Name {
		return nil, fmt.Errorf("design: file is for circuit %q, not %q", f.Circuit, c.Name)
	}
	a := Uniform(c.N(), f.Vdd, 0, 0)
	if f.VddPer != nil {
		a.VddPer = make([]float64, c.N())
		for i := range a.VddPer {
			a.VddPer[i] = f.Vdd
		}
	}
	covered := 0
	for i := range c.Gates {
		g := &c.Gates[i]
		if !g.IsLogic() {
			a.Vts[i] = f.Vdd // placeholder, ignored by the models
			a.W[i] = 1
			continue
		}
		vt, ok := f.Vts[g.Name]
		if !ok {
			return nil, fmt.Errorf("design: no threshold for gate %q", g.Name)
		}
		w, ok := f.W[g.Name]
		if !ok {
			return nil, fmt.Errorf("design: no width for gate %q", g.Name)
		}
		a.Vts[i] = vt
		a.W[i] = w
		if a.VddPer != nil {
			if v, ok := f.VddPer[g.Name]; ok {
				a.VddPer[i] = v
			}
		}
		covered++
	}
	if extra := len(f.Vts) - covered; extra > 0 {
		return nil, fmt.Errorf("design: file names %d gates the circuit does not have", extra)
	}
	return a, nil
}
