package design

import (
	"bytes"
	"strings"
	"testing"

	"cmosopt/internal/circuit"
)

func testCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := circuit.ParseBenchString("t", `
INPUT(a)
INPUT(b)
OUTPUT(y)
g1 = NAND(a, b)
y = NOT(g1)
`)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSaveLoadRoundTrip(t *testing.T) {
	c := testCircuit(t)
	a := Uniform(c.N(), 0.74, 0.12, 1)
	g1 := c.GateByName("g1").ID
	y := c.GateByName("y").ID
	a.W[g1] = 3.5
	a.W[y] = 1.25
	a.Vts[y] = 0.2

	var buf bytes.Buffer
	if err := Save(&buf, c, a); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	if back.Vdd != 0.74 {
		t.Errorf("Vdd = %v", back.Vdd)
	}
	if back.W[g1] != 3.5 || back.W[y] != 1.25 {
		t.Errorf("widths = %v %v", back.W[g1], back.W[y])
	}
	if back.Vts[g1] != 0.12 || back.Vts[y] != 0.2 {
		t.Errorf("thresholds = %v %v", back.Vts[g1], back.Vts[y])
	}
	if back.VddPer != nil {
		t.Error("single-rail design grew VddPer")
	}
}

func TestSaveLoadDualRail(t *testing.T) {
	c := testCircuit(t)
	a := Uniform(c.N(), 1.0, 0.15, 2)
	a.VddPer = make([]float64, c.N())
	for i := range a.VddPer {
		a.VddPer[i] = 1.0
	}
	y := c.GateByName("y").ID
	a.VddPer[y] = 0.6

	var buf bytes.Buffer
	if err := Save(&buf, c, a); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	if back.VddPer == nil || back.VddPer[y] != 0.6 {
		t.Errorf("dual rail lost: %v", back.VddPer)
	}
}

func TestLoadRejectsMismatches(t *testing.T) {
	c := testCircuit(t)
	a := Uniform(c.N(), 1.0, 0.2, 2)
	var buf bytes.Buffer
	if err := Save(&buf, c, a); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	other, err := circuit.ParseBenchString("other", "INPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(strings.NewReader(saved), other); err == nil {
		t.Error("design for a different circuit accepted")
	}
	// Same name, different gates.
	renamed := strings.Replace(saved, `"circuit": "t"`, `"circuit": "other"`, 1)
	if _, err := Load(strings.NewReader(renamed), other); err == nil {
		t.Error("design with unknown gate names accepted")
	}
	if _, err := Load(strings.NewReader("{not json"), c); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Missing a gate entry.
	gutted := strings.Replace(saved, `"g1"`, `"gX"`, 2)
	if _, err := Load(strings.NewReader(gutted), c); err == nil {
		t.Error("design missing a gate accepted")
	}
}

func TestSaveRejectsSizeMismatch(t *testing.T) {
	c := testCircuit(t)
	a := Uniform(2, 1.0, 0.2, 2) // wrong size
	var buf bytes.Buffer
	if err := Save(&buf, c, a); err == nil {
		t.Error("mismatched assignment accepted")
	}
}
