// Package design holds the optimization variables of the paper's problem
// statement: one supply voltage for the module, a threshold voltage per gate
// (a single shared value in the practical n_v = 1 case), and a channel-width
// multiplier per gate.
package design

import (
	"fmt"
	"math"

	"cmosopt/internal/device"
)

// Assignment is one candidate design point. Vts and W are indexed by gate ID;
// entries for Input gates are present but ignored by the models.
//
// VddPer optionally gives each gate its own supply (the paper's "more than
// one power supply voltage if desired", §4); nil means the single global Vdd
// of the practical case. Use VddAt to read the effective supply of a gate.
type Assignment struct {
	Vdd    float64   //cmosvet:unit V
	VddPer []float64 //cmosvet:unit V
	Vts    []float64 //cmosvet:unit V
	W      []float64 // channel-width multiplier //cmosvet:unit 1
}

// VddAt returns the supply voltage of gate id.
//
//cmosvet:unit return V
func (a *Assignment) VddAt(id int) float64 {
	if a.VddPer != nil {
		return a.VddPer[id]
	}
	return a.Vdd
}

// MaxVdd returns the highest supply in use (the rail the module needs).
//
//cmosvet:unit return V
func (a *Assignment) MaxVdd() float64 {
	if a.VddPer == nil {
		return a.Vdd
	}
	max := a.Vdd
	for _, v := range a.VddPer {
		if v > max {
			max = v
		}
	}
	return max
}

// DistinctVdds returns the set of distinct supply values in use.
//
//cmosvet:unit return V
func (a *Assignment) DistinctVdds() []float64 {
	if a.VddPer == nil {
		return []float64{a.Vdd}
	}
	const tol = 1e-9
	var out []float64
	for _, v := range a.VddPer {
		seen := false
		for _, u := range out {
			if math.Abs(u-v) < tol {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, v)
		}
	}
	return out
}

// Uniform returns an assignment with the same threshold and width on all n
// gates.
//
//cmosvet:unit vdd V
//cmosvet:unit vts V
//cmosvet:unit w 1
func Uniform(n int, vdd, vts, w float64) *Assignment {
	a := &Assignment{
		Vdd: vdd,
		Vts: make([]float64, n),
		W:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		a.Vts[i] = vts
		a.W[i] = w
	}
	return a
}

// Clone returns an independent deep copy.
func (a *Assignment) Clone() *Assignment {
	c := &Assignment{
		Vdd: a.Vdd,
		Vts: append([]float64(nil), a.Vts...),
		W:   append([]float64(nil), a.W...),
	}
	if a.VddPer != nil {
		c.VddPer = append([]float64(nil), a.VddPer...)
	}
	return c
}

// SetVts overwrites every gate's threshold with one value.
//
//cmosvet:unit vts V
func (a *Assignment) SetVts(vts float64) {
	for i := range a.Vts {
		a.Vts[i] = vts
	}
}

// Validate checks the assignment against the circuit size and the
// technology's legal ranges.
func (a *Assignment) Validate(t *device.Tech, n int) error {
	if len(a.Vts) != n || len(a.W) != n {
		return fmt.Errorf("design: assignment sized for %d/%d gates, circuit has %d", len(a.Vts), len(a.W), n)
	}
	if math.IsNaN(a.Vdd) || a.Vdd < t.VddMin || a.Vdd > t.VddMax {
		return fmt.Errorf("design: Vdd %v outside [%v,%v]", a.Vdd, t.VddMin, t.VddMax)
	}
	for i := range a.Vts {
		if math.IsNaN(a.Vts[i]) || a.Vts[i] < t.VtsMin || a.Vts[i] > t.VtsMax {
			return fmt.Errorf("design: gate %d Vts %v outside [%v,%v]", i, a.Vts[i], t.VtsMin, t.VtsMax)
		}
		if math.IsNaN(a.W[i]) || a.W[i] < t.WMin || a.W[i] > t.WMax {
			return fmt.Errorf("design: gate %d width %v outside [%v,%v]", i, a.W[i], t.WMin, t.WMax)
		}
	}
	return nil
}

// DistinctVts returns the set of distinct threshold values in use, within a
// small tolerance — the paper's n_v.
//
//cmosvet:unit return V
func (a *Assignment) DistinctVts() []float64 {
	const tol = 1e-9
	var out []float64
	for _, v := range a.Vts {
		seen := false
		for _, u := range out {
			if math.Abs(u-v) < tol {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, v)
		}
	}
	return out
}
