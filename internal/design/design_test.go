package design

import (
	"testing"

	"cmosopt/internal/device"
)

func TestUniform(t *testing.T) {
	a := Uniform(4, 1.2, 0.2, 3)
	if a.Vdd != 1.2 || len(a.Vts) != 4 || len(a.W) != 4 {
		t.Fatalf("bad assignment %+v", a)
	}
	for i := 0; i < 4; i++ {
		if a.Vts[i] != 0.2 || a.W[i] != 3 {
			t.Errorf("entry %d = (%v,%v)", i, a.Vts[i], a.W[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := Uniform(3, 1.0, 0.3, 2)
	b := a.Clone()
	b.Vdd = 2
	b.Vts[0] = 0.5
	b.W[1] = 9
	if a.Vdd != 1.0 || a.Vts[0] != 0.3 || a.W[1] != 2 {
		t.Error("Clone shares state with the original")
	}
}

func TestSetVts(t *testing.T) {
	a := Uniform(3, 1.0, 0.3, 2)
	a.SetVts(0.15)
	for i := range a.Vts {
		if a.Vts[i] != 0.15 {
			t.Fatalf("Vts[%d] = %v", i, a.Vts[i])
		}
	}
}

func TestValidate(t *testing.T) {
	tech := device.Default350()
	good := Uniform(2, 1.0, 0.3, 2)
	if err := good.Validate(&tech, 2); err != nil {
		t.Fatalf("good assignment rejected: %v", err)
	}
	cases := []struct {
		name string
		mod  func(*Assignment)
		n    int
	}{
		{"size mismatch", func(a *Assignment) {}, 3},
		{"vdd low", func(a *Assignment) { a.Vdd = 0.01 }, 2},
		{"vdd high", func(a *Assignment) { a.Vdd = 9 }, 2},
		{"vts low", func(a *Assignment) { a.Vts[1] = 0.001 }, 2},
		{"vts high", func(a *Assignment) { a.Vts[0] = 2 }, 2},
		{"w low", func(a *Assignment) { a.W[0] = 0.2 }, 2},
		{"w high", func(a *Assignment) { a.W[1] = 1e4 }, 2},
	}
	for _, tc := range cases {
		a := Uniform(2, 1.0, 0.3, 2)
		tc.mod(a)
		if err := a.Validate(&tech, tc.n); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestDistinctVts(t *testing.T) {
	a := Uniform(4, 1.0, 0.3, 2)
	if got := a.DistinctVts(); len(got) != 1 {
		t.Errorf("uniform DistinctVts = %v", got)
	}
	a.Vts[2] = 0.5
	a.Vts[3] = 0.5
	if got := a.DistinctVts(); len(got) != 2 {
		t.Errorf("two-level DistinctVts = %v", got)
	}
	a.Vts[3] = 0.5 + 1e-12 // within tolerance of 0.5
	if got := a.DistinctVts(); len(got) != 2 {
		t.Errorf("tolerance DistinctVts = %v", got)
	}
}

func TestPerGateVddAccessors(t *testing.T) {
	a := Uniform(3, 1.2, 0.2, 2)
	if a.VddAt(0) != 1.2 || a.MaxVdd() != 1.2 {
		t.Error("uniform accessors broken")
	}
	if got := a.DistinctVdds(); len(got) != 1 || got[0] != 1.2 {
		t.Errorf("DistinctVdds = %v", got)
	}
	a.VddPer = []float64{1.2, 0.6, 0.6}
	if a.VddAt(1) != 0.6 || a.VddAt(0) != 1.2 {
		t.Error("per-gate VddAt broken")
	}
	if a.MaxVdd() != 1.2 {
		t.Errorf("MaxVdd = %v", a.MaxVdd())
	}
	if got := a.DistinctVdds(); len(got) != 2 {
		t.Errorf("DistinctVdds = %v", got)
	}
	b := a.Clone()
	b.VddPer[2] = 0.9
	if a.VddPer[2] != 0.6 {
		t.Error("Clone shares VddPer")
	}
}
