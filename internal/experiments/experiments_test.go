package experiments

import (
	"strings"
	"testing"

	"cmosopt/internal/core"
	"cmosopt/internal/device"
)

// fastConfig shrinks the experiment to two small circuits for test speed.
func fastConfig() Config {
	cfg := Default()
	cfg.Circuits = []string{"s27", "s298"}
	cfg.Activities = []float64{0.5}
	cfg.Opts.M = 10
	return cfg
}

func TestRunSuitePaperClaims(t *testing.T) {
	cfg := fastConfig()
	entries, err := RunSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries", len(entries))
	}
	for _, e := range entries {
		if !e.Baseline.Feasible || !e.Joint.Feasible {
			t.Errorf("%s: infeasible results", e.Circuit)
		}
		if e.Savings < 2 {
			t.Errorf("%s: savings %v implausibly low", e.Circuit, e.Savings)
		}
		if e.Joint.Energy.Total() > e.Baseline.Energy.Total() {
			t.Errorf("%s: joint worse than baseline", e.Circuit)
		}
	}
	// The larger benchmark shows the headline order-of-magnitude savings,
	// and the paper-comparable factor vs the 3.3 V reference hits the
	// "typically a factor of 25" regime.
	for _, e := range entries {
		if e.Circuit != "s298" {
			continue
		}
		if e.Savings < 8 {
			t.Errorf("s298 savings %v, want > 8", e.Savings)
		}
		if e.Savings33 < 15 {
			t.Errorf("s298 savings vs 3.3V reference = %v, want > 15 (paper: ~25)", e.Savings33)
		}
		if e.Ref33.Vdd != e.Baseline.Vdd && e.Savings33 < e.Savings {
			t.Error("3.3V reference should never show smaller savings than the free baseline")
		}
	}
}

func TestTablesRender(t *testing.T) {
	cfg := fastConfig()
	cfg.Circuits = []string{"s27"}
	entries, err := RunSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t1 := Table1(entries).String()
	if !strings.Contains(t1, "s27") || !strings.Contains(t1, "Vdd") {
		t.Errorf("table 1 malformed:\n%s", t1)
	}
	t2 := Table2(entries).String()
	if !strings.Contains(t2, "Savings") || !strings.Contains(t2, "x") {
		t.Errorf("table 2 malformed:\n%s", t2)
	}
}

func TestFigure2aDriver(t *testing.T) {
	cfg := fastConfig()
	pts, err := Figure2a(cfg, "s27", 0.5, []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[1].Savings > pts[0].Savings {
		t.Errorf("savings should not grow with variation: %v → %v", pts[0].Savings, pts[1].Savings)
	}
	tbl := Figure2aTable(pts).String()
	if !strings.Contains(tbl, "20%") {
		t.Errorf("figure 2a table malformed:\n%s", tbl)
	}
}

func TestFigure2bDriver(t *testing.T) {
	cfg := fastConfig()
	pts, err := Figure2b(cfg, "s27", 0.5, []float64{0.7, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	tbl := Figure2bTable(pts).String()
	if !strings.Contains(tbl, "0.70") {
		t.Errorf("figure 2b table malformed:\n%s", tbl)
	}
}

func TestSACompareDriver(t *testing.T) {
	cfg := fastConfig()
	ao := core.DefaultAnnealOptions()
	ao.StepsPerPass = 400
	entries, err := SACompare(cfg, []string{"s27"}, 0.5, ao)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("got %d entries", len(entries))
	}
	if entries[0].Ratio < 0.9 {
		t.Errorf("annealer beat the heuristic by >10%% (ratio %v); schedule sizing should prevent that", entries[0].Ratio)
	}
	tbl := SATable(entries).String()
	if !strings.Contains(tbl, "Anneal/Heuristic") {
		t.Errorf("SA table malformed:\n%s", tbl)
	}
}

func TestMultiVtStudyDriver(t *testing.T) {
	cfg := fastConfig()
	entries, err := MultiVtStudy(cfg, "s27", 0.5, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries", len(entries))
	}
	if entries[1].Gain < 1-1e-9 {
		t.Errorf("nv=2 should not lose energy vs nv=1: gain %v", entries[1].Gain)
	}
	tbl := MultiVtTable(entries).String()
	if !strings.Contains(tbl, "nv") {
		t.Errorf("multi-vt table malformed:\n%s", tbl)
	}
}

func TestUnknownCircuit(t *testing.T) {
	cfg := fastConfig()
	cfg.Circuits = []string{"bogus"}
	if _, err := RunSuite(cfg); err == nil {
		t.Error("unknown circuit accepted")
	}
}

func TestProcessVtStudy(t *testing.T) {
	cfg := fastConfig()
	cfg.Circuits = []string{"s27", "s298"}
	rec, entries, err := ProcessVtStudy(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rec < 0.1 || rec > 0.4 {
		t.Errorf("recommended process Vt %v outside plausible range", rec)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries", len(entries))
	}
	for _, e := range entries {
		if e.Penalty < 0.5 || e.Penalty > 3 {
			t.Errorf("%s: penalty %v implausible", e.Circuit, e.Penalty)
		}
		if e.OwnEnergy <= 0 || e.AtRecVt <= 0 {
			t.Errorf("%s: degenerate energies", e.Circuit)
		}
	}
	tbl := ProcessVtTable(rec, entries).String()
	if !strings.Contains(tbl, "recommended process Vt") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}

func TestCrossNodeStudy(t *testing.T) {
	cfg := fastConfig()
	entries, err := CrossNodeStudy(cfg, 0.5, []device.Tech{device.Default350(), device.Default250()})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 { // 2 circuits x 2 nodes
		t.Fatalf("got %d entries", len(entries))
	}
	// The scaled node must win on every circuit.
	byCircuit := map[string]map[string]float64{}
	for _, e := range entries {
		if byCircuit[e.Circuit] == nil {
			byCircuit[e.Circuit] = map[string]float64{}
		}
		byCircuit[e.Circuit][e.Node] = e.Result.Energy.Total()
		if !e.Result.Feasible {
			t.Errorf("%s@%s infeasible", e.Circuit, e.Node)
		}
	}
	for name, nodes := range byCircuit {
		if nodes["generic-0.25um"] >= nodes["generic-0.35um"] {
			t.Errorf("%s: 0.25um %v not below 0.35um %v", name, nodes["generic-0.25um"], nodes["generic-0.35um"])
		}
	}
	tbl := CrossNodeTable(entries).String()
	if !strings.Contains(tbl, "generic-0.25um") {
		t.Errorf("table malformed:\n%s", tbl)
	}
}
