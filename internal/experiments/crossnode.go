package experiments

import (
	"fmt"

	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/report"
)

// Cross-node study: the paper's process-design application viewed across a
// technology generation — run the joint optimizer on the same benchmarks in
// two parameter sets (0.35 µm and its constant-field-scaled 0.25 µm
// successor) and compare the optima the algorithm steers each process to.

// NodeEntry is one (circuit, node) outcome.
type NodeEntry struct {
	Circuit string
	Node    string
	Result  *core.Result
}

// CrossNodeStudy runs the joint optimizer per circuit per technology.
func CrossNodeStudy(cfg Config, act float64, nodes []device.Tech) ([]NodeEntry, error) {
	var out []NodeEntry
	for _, name := range cfg.Circuits {
		for _, tech := range nodes {
			ct, err := loadCircuit(name)
			if err != nil {
				return nil, err
			}
			c := cfg
			c.Tech = tech
			p, err := core.NewProblem(c.spec(ct, act))
			if err != nil {
				return nil, fmt.Errorf("%s@%s: %w", name, tech.Name, err)
			}
			res, err := p.OptimizeJoint(c.Opts)
			if err != nil {
				return nil, fmt.Errorf("%s@%s: %w", name, tech.Name, err)
			}
			out = append(out, NodeEntry{Circuit: name, Node: tech.Name, Result: res})
		}
	}
	return out, nil
}

// CrossNodeTable renders the study.
func CrossNodeTable(entries []NodeEntry) *report.Table {
	t := &report.Table{
		Title:   "Cross-node study: joint optima per technology generation",
		Headers: []string{"Circuit", "Node", "Total E (J)", "Vdd (V)", "Vt (V)", "static/dynamic"},
	}
	for _, e := range entries {
		r := e.Result
		t.AddRow(e.Circuit, e.Node, report.Sci(r.Energy.Total()),
			fmt.Sprintf("%.2f", r.Vdd), fmt.Sprintf("%.3f", r.VtsValues[0]),
			fmt.Sprintf("%.2f", r.Energy.Static/r.Energy.Dynamic))
	}
	return t
}
