package experiments

import (
	"fmt"
	"math"

	"cmosopt/internal/core"
	"cmosopt/internal/report"
)

// Process-design mode: the paper's §1 states "The algorithms discussed in
// this paper can be used to design a CMOS process for ultra low power
// designs ... one may use the algorithms on existing benchmarks with
// predicted circuit timing parameters to find the most desirable threshold
// voltage." This driver does exactly that: run the joint optimizer over the
// benchmark suite, look at the threshold each circuit asks for, recommend a
// single process-wide value, and then quantify what that one-size-fits-all
// threshold costs each circuit against its own optimum.

// refVt is the 1 V reference that makes the log-space geometric mean below
// dimensionless: thresholds enter as Vt/refVt and the recommendation leaves
// as refVt·exp(·), so the volts formally cancel and reappear. Dividing and
// multiplying by exactly 1.0 is bitwise free.
//
//cmosvet:unit V
const refVt = 1.0

// ProcessVtEntry is the per-circuit outcome of the process-Vt study.
type ProcessVtEntry struct {
	Circuit   string
	Activity  float64 //cmosvet:unit 1
	OwnVt     float64 // the threshold the circuit's own joint optimum picked //cmosvet:unit V
	OwnEnergy float64 //cmosvet:unit J
	AtRecVt   float64 // total energy with Vt pinned at the recommendation //cmosvet:unit J
	Penalty   float64 // AtRecVt / OwnEnergy (≥ 1) //cmosvet:unit 1
}

// ProcessVtStudy runs the joint optimizer per circuit, recommends the
// energy-weighted geometric mean of the returned thresholds as the process
// target, then re-optimizes every circuit with the threshold pinned there
// (supply and widths still free). It returns the recommendation and the
// per-circuit entries.
//
//cmosvet:unit act 1
//cmosvet:unit return1 V
func ProcessVtStudy(cfg Config, act float64) (recommended float64, entries []ProcessVtEntry, err error) {
	type own struct {
		p   *core.Problem
		res *core.Result
	}
	var owns []own
	var logSum, wSum float64
	for _, name := range cfg.Circuits {
		ct, err := loadCircuit(name)
		if err != nil {
			return 0, nil, err
		}
		p, err := core.NewProblem(cfg.spec(ct, act))
		if err != nil {
			return 0, nil, fmt.Errorf("%s: %w", name, err)
		}
		res, err := p.OptimizeJoint(cfg.Opts)
		if err != nil {
			return 0, nil, fmt.Errorf("%s: %w", name, err)
		}
		owns = append(owns, own{p, res})
		// Weight by energy: circuits that burn more should steer the process.
		w := res.Energy.Total()
		logSum += w * math.Log(res.VtsValues[0]/refVt)
		wSum += w
	}
	if wSum <= 0 {
		return 0, nil, fmt.Errorf("experiments: degenerate suite energies")
	}
	recommended = refVt * math.Exp(logSum/wSum)

	for i, o := range owns {
		opts := cfg.Opts
		opts.FixedVt = recommended
		pinned, err := o.p.OptimizeBaseline(opts)
		if err != nil {
			return 0, nil, fmt.Errorf("%s at recommended Vt: %w", cfg.Circuits[i], err)
		}
		entries = append(entries, ProcessVtEntry{
			Circuit:   cfg.Circuits[i],
			Activity:  act,
			OwnVt:     o.res.VtsValues[0],
			OwnEnergy: o.res.Energy.Total(),
			AtRecVt:   pinned.Energy.Total(),
			Penalty:   pinned.Energy.Total() / o.res.Energy.Total(),
		})
	}
	return recommended, entries, nil
}

// ProcessVtTable renders the study.
func ProcessVtTable(recommended float64, entries []ProcessVtEntry) *report.Table {
	t := &report.Table{
		Title: fmt.Sprintf("Process threshold selection: recommended process Vt = %.0f mV (energy-weighted over the suite)",
			recommended*1e3),
		Headers: []string{"Circuit", "Own optimal Vt", "Own E (J)", "E at process Vt (J)", "Penalty"},
	}
	for _, e := range entries {
		t.AddRow(e.Circuit,
			fmt.Sprintf("%.0f mV", e.OwnVt*1e3),
			report.Sci(e.OwnEnergy), report.Sci(e.AtRecVt),
			fmt.Sprintf("%.2fx", e.Penalty))
	}
	return t
}
