// Package experiments contains the drivers that regenerate every table and
// figure of the paper's evaluation (§5): Table 1 (fixed-Vt baseline),
// Table 2 (joint heuristic with savings), Figure 2(a) (Vt process-variation
// sweep), Figure 2(b) (cycle-time slack sweep), the simulated-annealing
// comparison, and the multi-threshold extension study. The cmd/tables and
// cmd/figures executables and the root bench harness are thin wrappers over
// this package.
package experiments

import (
	"fmt"

	"cmosopt/internal/circuit"
	"cmosopt/internal/core"
	"cmosopt/internal/device"
	"cmosopt/internal/netgen"
	"cmosopt/internal/obs"
	"cmosopt/internal/parallel"
	"cmosopt/internal/report"
	"cmosopt/internal/wiring"
)

// Config fixes the experimental conditions shared by all experiments. The
// defaults are the paper's: fc = 300 MHz, two input-activity levels, uniform
// input probability 0.5, the eight ISCAS'89-profile benchmark circuits.
type Config struct {
	Fc         float64
	Skew       float64
	InputProb  float64
	Activities []float64
	Circuits   []string
	Tech       device.Tech
	Wiring     wiring.Params
	Opts       core.Options
	// Obs, when non-nil, collects spans/counters/histograms for every problem
	// the experiment drivers elaborate. Observation only; results unchanged.
	Obs *obs.Registry
}

// Default returns the paper's experimental conditions.
func Default() Config {
	return Config{
		Fc:         300e6,
		Skew:       0.95,
		InputProb:  0.5,
		Activities: []float64{0.1, 0.5},
		Circuits:   netgen.SuiteNames(),
		Tech:       device.Default350(),
		Wiring:     wiring.Default350(),
		Opts:       core.DefaultOptions(),
	}
}

// spec builds the core.Spec for one circuit and activity level.
func (c *Config) spec(ct *circuit.Circuit, act float64) core.Spec {
	return core.Spec{
		Circuit:      ct,
		Tech:         c.Tech,
		Wiring:       c.Wiring,
		Fc:           c.Fc,
		Skew:         c.Skew,
		InputProb:    c.InputProb,
		InputDensity: act,
		Obs:          c.Obs,
	}
}

// loadCircuit resolves a benchmark name to a circuit: a synthetic ISCAS'89
// or ISCAS'85 profile, or the embedded genuine netlists "s27" / "c17".
func loadCircuit(name string) (*circuit.Circuit, error) {
	return netgen.LoadNamed(name)
}

// Entry is one (circuit, activity) cell of Tables 1 and 2.
type Entry struct {
	Circuit  string
	Gates    int
	Depth    int
	Activity float64
	Baseline *core.Result // Table 1: widths+Vdd at fixed Vt = 0.7 V
	// Ref33 is the widths-only design at Vdd = 3.3 V, Vt = 0.7 V — the point
	// the paper's Table 1 optimizer "coincidentally" returned, i.e. the
	// numerical reference behind the paper's 10–25x savings figures.
	Ref33   *core.Result
	Joint   *core.Result // Table 2: joint Vdd/Vts/widths
	Savings float64      // Baseline total / Joint total
	// Savings33 is Ref33 total / Joint total, the paper-comparable factor.
	Savings33 float64
}

// RunSuite produces the data behind Tables 1 and 2 in one pass (the baseline
// is shared between them). Circuits fan out over cfg.Opts.Workers workers
// (0 = one per CPU); entries keep the cfg.Circuits order and the
// lowest-index failure is the one reported, so the output is independent of
// the worker count. Each circuit is loaded privately by its worker, so the
// per-run optimizers stay serial within a circuit (inner Workers pinned to 1
// when the suite level is parallel).
func RunSuite(cfg Config) ([]Entry, error) {
	slots := make([][]Entry, len(cfg.Circuits))
	w := parallel.Workers(cfg.Opts.Workers)
	if w > 1 {
		cfg.Opts.Workers = 1 // the suite level owns the parallelism
	}
	err := parallel.FirstError(w, len(cfg.Circuits), func(_, i int) error {
		var err error
		slots[i], err = runCircuit(cfg, cfg.Circuits[i])
		return err
	})
	if err != nil {
		return nil, err
	}
	var out []Entry
	for i := range slots {
		out = append(out, slots[i]...)
	}
	return out, nil
}

// runCircuit produces the Table 1/2 entries for one circuit.
func runCircuit(cfg Config, name string) ([]Entry, error) {
	var out []Entry
	{
		ct, err := loadCircuit(name)
		if err != nil {
			return nil, err
		}
		for _, act := range cfg.Activities {
			p, err := core.NewProblem(cfg.spec(ct, act))
			if err != nil {
				return nil, fmt.Errorf("%s a=%v: %w", name, act, err)
			}
			base, err := p.OptimizeBaseline(cfg.Opts)
			if err != nil {
				return nil, fmt.Errorf("%s a=%v baseline: %w", name, act, err)
			}
			optsRef := cfg.Opts
			optsRef.FixedVdd = cfg.Tech.VddMax
			ref33, err := p.OptimizeBaseline(optsRef)
			if err != nil {
				return nil, fmt.Errorf("%s a=%v 3.3V reference: %w", name, act, err)
			}
			joint, err := p.OptimizeJoint(cfg.Opts)
			if err != nil {
				return nil, fmt.Errorf("%s a=%v joint: %w", name, act, err)
			}
			depth, err := p.C.Depth()
			if err != nil {
				return nil, err
			}
			out = append(out, Entry{
				Circuit:   name,
				Gates:     p.C.NumLogic(),
				Depth:     depth,
				Activity:  act,
				Baseline:  base,
				Ref33:     ref33,
				Joint:     joint,
				Savings:   joint.Savings(base),
				Savings33: joint.Savings(ref33),
			})
		}
	}
	return out, nil
}

// Table1 renders the baseline results in the layout of the paper's Table 1.
func Table1(entries []Entry) *report.Table {
	t := &report.Table{
		Title: "Table 1: benchmark circuits under width+Vdd optimization (Vt = 700 mV, fc = 300 MHz)",
		Headers: []string{"Circuit", "Gates", "Depth", "Activity",
			"Static E (J)", "Dynamic E (J)", "Total E (J)", "Delay (ns)", "Vdd (V)"},
	}
	for _, e := range entries {
		b := e.Baseline
		t.AddRow(e.Circuit, e.Gates, e.Depth, fmt.Sprintf("%.2f", e.Activity),
			report.Sci(b.Energy.Static), report.Sci(b.Energy.Dynamic), report.Sci(b.Energy.Total()),
			fmt.Sprintf("%.3f", b.CriticalDelay*1e9), fmt.Sprintf("%.2f", b.Vdd))
	}
	return t
}

// Table2 renders the joint-optimization results in the layout of the paper's
// Table 2 (with the returned Vdd/Vt columns the paper reports in prose).
func Table2(entries []Entry) *report.Table {
	t := &report.Table{
		Title: "Table 2: joint Vdd/Vt/width optimization (heuristic), savings vs Table 1 and vs the 3.3V/0.7V reference",
		Headers: []string{"Circuit", "Activity",
			"Static E (J)", "Dynamic E (J)", "Total E (J)", "Delay (ns)",
			"Vdd (V)", "Vt (V)", "Savings", "vs 3.3V"},
	}
	for _, e := range entries {
		j := e.Joint
		t.AddRow(e.Circuit, fmt.Sprintf("%.2f", e.Activity),
			report.Sci(j.Energy.Static), report.Sci(j.Energy.Dynamic), report.Sci(j.Energy.Total()),
			fmt.Sprintf("%.3f", j.CriticalDelay*1e9),
			fmt.Sprintf("%.2f", j.Vdd), fmt.Sprintf("%.3f", j.VtsValues[0]),
			fmt.Sprintf("%.1fx", e.Savings), fmt.Sprintf("%.1fx", e.Savings33))
	}
	return t
}

// Figure2a runs the Vt process-variation study of Figure 2(a) on one circuit
// at the given activity.
func Figure2a(cfg Config, name string, act float64, tols []float64) ([]core.VariationPoint, error) {
	ct, err := loadCircuit(name)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(cfg.spec(ct, act))
	if err != nil {
		return nil, err
	}
	base, err := p.OptimizeBaseline(cfg.Opts)
	if err != nil {
		return nil, err
	}
	return p.VariationStudy(tols, cfg.Opts, base)
}

// Figure2aTable renders the variation sweep.
func Figure2aTable(pts []core.VariationPoint) *report.Table {
	t := &report.Table{
		Title:   "Figure 2(a): power savings vs threshold-voltage variation (worst-case corners)",
		Headers: []string{"Vt tolerance", "Savings", "Worst E (J)", "Vdd (V)", "Vt (V)"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%.0f%%", p.Tol*100), fmt.Sprintf("%.1fx", p.Savings),
			report.Sci(p.WorstEnergy), fmt.Sprintf("%.2f", p.Vdd), fmt.Sprintf("%.3f", p.Vts))
	}
	return t
}

// Figure2b runs the cycle-time slack study of Figure 2(b) on one circuit.
func Figure2b(cfg Config, name string, act float64, skews []float64) ([]core.SlackPoint, error) {
	ct, err := loadCircuit(name)
	if err != nil {
		return nil, err
	}
	return core.SlackStudy(cfg.spec(ct, act), skews, cfg.Opts)
}

// Figure2bTable renders the slack sweep.
func Figure2bTable(pts []core.SlackPoint) *report.Table {
	t := &report.Table{
		Title:   "Figure 2(b): power savings vs available cycle time (skew factor b)",
		Headers: []string{"Skew b", "Savings", "Joint E (J)", "Vdd (V)", "Vt (V)"},
	}
	for _, p := range pts {
		t.AddRow(fmt.Sprintf("%.2f", p.Skew), fmt.Sprintf("%.1fx", p.Savings),
			report.Sci(p.JointEnergy), fmt.Sprintf("%.2f", p.JointVdd), fmt.Sprintf("%.3f", p.JointVts))
	}
	return t
}

// SAEntry is one row of the §5 simulated-annealing comparison.
type SAEntry struct {
	Circuit string
	Joint   *core.Result
	Anneal  *core.Result
	// Ratio is anneal total energy / heuristic total energy (> 1 means the
	// heuristic wins, the paper's finding).
	Ratio float64
}

// SACompare runs the heuristic and the multi-pass annealer on each circuit.
func SACompare(cfg Config, names []string, act float64, ao core.AnnealOptions) ([]SAEntry, error) {
	var out []SAEntry
	for _, name := range names {
		ct, err := loadCircuit(name)
		if err != nil {
			return nil, err
		}
		p, err := core.NewProblem(cfg.spec(ct, act))
		if err != nil {
			return nil, err
		}
		joint, err := p.OptimizeJoint(cfg.Opts)
		if err != nil {
			return nil, err
		}
		sa, err := p.OptimizeAnneal(ao)
		if err != nil {
			return nil, err
		}
		out = append(out, SAEntry{
			Circuit: name,
			Joint:   joint,
			Anneal:  sa,
			Ratio:   sa.Energy.Total() / joint.Energy.Total(),
		})
	}
	return out, nil
}

// SATable renders the annealing comparison.
func SATable(entries []SAEntry) *report.Table {
	t := &report.Table{
		Title:   "§5 comparison: multi-pass simulated annealing vs the heuristic",
		Headers: []string{"Circuit", "Heuristic E (J)", "Anneal E (J)", "Anneal/Heuristic", "Anneal feasible"},
	}
	for _, e := range entries {
		t.AddRow(e.Circuit, report.Sci(e.Joint.Energy.Total()), report.Sci(e.Anneal.Energy.Total()),
			fmt.Sprintf("%.2fx", e.Ratio), fmt.Sprintf("%v", e.Anneal.Feasible))
	}
	return t
}

// MultiVtEntry is one row of the n_v extension study.
type MultiVtEntry struct {
	Circuit string
	Nv      int
	Result  *core.Result
	// Gain is total energy at nv=1 divided by total energy at this nv.
	Gain float64
}

// MultiVtStudy sweeps the number of distinct threshold voltages on one
// circuit (the paper's §4.3 "flexibility to use more than one threshold").
func MultiVtStudy(cfg Config, name string, act float64, nvs []int) ([]MultiVtEntry, error) {
	ct, err := loadCircuit(name)
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblem(cfg.spec(ct, act))
	if err != nil {
		return nil, err
	}
	var ref float64
	var out []MultiVtEntry
	for _, nv := range nvs {
		res, err := p.OptimizeMultiVt(nv, cfg.Opts)
		if err != nil {
			return nil, err
		}
		if nv == 1 || ref == 0 {
			ref = res.Energy.Total()
		}
		out = append(out, MultiVtEntry{Circuit: name, Nv: nv, Result: res, Gain: ref / res.Energy.Total()})
	}
	return out, nil
}

// MultiVtTable renders the n_v sweep.
func MultiVtTable(entries []MultiVtEntry) *report.Table {
	t := &report.Table{
		Title:   "Multi-threshold extension: energy vs number of distinct Vt values",
		Headers: []string{"Circuit", "nv", "Total E (J)", "Vt values (V)", "Gain vs nv=1"},
	}
	for _, e := range entries {
		vts := ""
		for i, v := range e.Result.VtsValues {
			if i > 0 {
				vts += " / "
			}
			vts += fmt.Sprintf("%.3f", v)
		}
		t.AddRow(e.Circuit, e.Nv, report.Sci(e.Result.Energy.Total()), vts, fmt.Sprintf("%.2fx", e.Gain))
	}
	return t
}
